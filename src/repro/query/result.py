"""Query results: lazily-pulled records plus execution statistics.

A :class:`QueryResult` wraps the executor's row generator.  Read-only queries
stay lazy — each record is pulled from the operator tree on demand, so a long
query iterated slowly still reads every row through the transaction it was
started in (one snapshot under snapshot isolation).  Write queries are
drained eagerly by :func:`repro.query.execute` before the result is handed
back, matching Cypher's eager-write semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence


@dataclass
class QueryStatistics:
    """Counters describing what a query changed."""

    nodes_created: int = 0
    nodes_deleted: int = 0
    relationships_created: int = 0
    relationships_deleted: int = 0
    properties_set: int = 0
    labels_added: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view of the counters."""
        return {
            "nodes_created": self.nodes_created,
            "nodes_deleted": self.nodes_deleted,
            "relationships_created": self.relationships_created,
            "relationships_deleted": self.relationships_deleted,
            "properties_set": self.properties_set,
            "labels_added": self.labels_added,
        }

    @property
    def contains_updates(self) -> bool:
        """Whether the query changed anything."""
        return any(self.as_dict().values())


class Record:
    """One result row: value access by column name or position."""

    __slots__ = ("_columns", "_values")

    def __init__(self, columns: Sequence[str], values: Sequence[object]) -> None:
        self._columns = columns
        self._values = list(values)

    def __getitem__(self, key) -> object:
        if isinstance(key, int):
            return self._values[key]
        try:
            return self._values[self._columns.index(key)]
        except ValueError:
            raise KeyError(key) from None

    def get(self, key: str, default: object = None) -> object:
        """Value of column ``key``, or ``default`` if the column is absent."""
        try:
            return self[key]
        except (KeyError, IndexError):
            return default

    def keys(self) -> List[str]:
        """The column names, in order."""
        return list(self._columns)

    def values(self) -> List[object]:
        """The column values, in order."""
        return list(self._values)

    def as_dict(self) -> Dict[str, object]:
        """The row as a column → value dict."""
        return dict(zip(self._columns, self._values))

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[object]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Record):
            return self.as_dict() == other.as_dict()
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{key}={value!r}" for key, value in zip(self._columns, self._values)
        )
        return f"<Record {inner}>"


class QueryResult:
    """The outcome of one query execution.

    Iterable (lazily, unless the query wrote or the caller consumed it), with
    the result ``columns``, mutation ``stats`` and — for ``EXPLAIN`` — the
    ``plan`` tree with estimated vs. actual rows per operator.
    """

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterator[List[object]],
        stats: QueryStatistics,
        plan=None,
    ) -> None:
        self.columns = list(columns)
        self.stats = stats
        #: The :class:`repro.query.planner.Plan` when EXPLAIN was requested.
        self.plan = plan
        self._rows = rows
        #: Records pulled so far (shared by every iterator over this result,
        #: so a partial iteration followed by ``records()`` loses nothing).
        self._collected: List[Record] = []
        self._exhausted = False

    def __iter__(self) -> Iterator[Record]:
        index = 0
        while True:
            while index < len(self._collected):
                yield self._collected[index]
                index += 1
            if self._exhausted:
                return
            try:
                values = next(self._rows)
            except StopIteration:
                self._exhausted = True
                return
            self._collected.append(Record(self.columns, values))

    def consume(self) -> "QueryResult":
        """Drain the remaining rows into memory; returns ``self``."""
        for _record in self:
            pass
        return self

    def records(self) -> List[Record]:
        """All rows, materialising the result if needed."""
        self.consume()
        return list(self._collected)

    def rows(self) -> List[List[object]]:
        """All rows as plain value lists."""
        return [record.values() for record in self.records()]

    def single(self) -> Record:
        """The only record; raises if there are zero or several."""
        records = self.records()
        if len(records) != 1:
            raise ValueError(f"expected exactly one record, got {len(records)}")
        return records[0]

    def value(self, column: int = 0) -> object:
        """Column ``column`` of the single record."""
        return self.single()[column]

    def values(self, column: int = 0) -> List[object]:
        """Column ``column`` of every record."""
        return [record[column] for record in self.records()]

    def render_plan(self) -> str:
        """The EXPLAIN plan as indented text ('' when not an EXPLAIN run)."""
        return self.plan.render() if self.plan is not None else ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "materialised" if self._exhausted else "lazy"
        return f"<QueryResult columns={self.columns} ({state})>"
