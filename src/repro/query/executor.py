"""Pull-based query executor.

Each plan operator becomes a Python generator over *rows* (variable → value
dicts); pulling the root pulls exactly as much of the tree as needed, so
``LIMIT 10`` over a million-node scan touches ~10 nodes.  Every read goes
through the :class:`repro.api.transaction.Transaction` the query was started
in — and the expand operators run on :mod:`repro.api.traversal` — so a whole
query, however long it takes to iterate, observes a single snapshot under
snapshot isolation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import (
    NodeNotFoundError,
    QueryExecutionError,
    RelationshipNotFoundError,
)
from repro.api.transaction import Node, Relationship, Transaction
from repro.api.traversal import Order, Path, TraversalDescription, Uniqueness
from repro.query import ast
from repro.query.planner import (
    Aggregate,
    AllNodesScan,
    Argument,
    CreateOp,
    DeleteOp,
    Distinct,
    Expand,
    Filter,
    LabelScan,
    Limit,
    OrderBy,
    Plan,
    ProduceResults,
    Projection,
    PropertyIndexSeek,
    SetOp,
    Skip,
    SOURCE_ROW_KEY,
)
from repro.query.result import QueryStatistics

Row = Dict[str, object]


class ExecutionContext:
    """Everything operators need at runtime: the transaction, parameters, stats."""

    def __init__(self, tx: Transaction, parameters: Mapping[str, object],
                 stats: QueryStatistics) -> None:
        self.tx = tx
        self.parameters = parameters
        self.stats = stats


def run_plan(plan: Plan, ctx: ExecutionContext) -> Iterator[List[object]]:
    """Run a plan, yielding result rows as value lists (lazy)."""
    root = plan.root
    columns = root.columns
    for row in _run(root, ctx):
        if columns:
            yield [row.get(column) for column in columns]


# ---------------------------------------------------------------------------
# Operator dispatch
# ---------------------------------------------------------------------------


def _run(op, ctx: ExecutionContext) -> Iterator[Row]:
    """Instantiate one operator's generator, counting rows into the plan node."""
    runner = _RUNNERS[type(op)]
    op.actual_rows = 0

    def counted() -> Iterator[Row]:
        for row in runner(op, ctx):
            op.actual_rows += 1
            yield row

    return counted()


def _run_argument(op: Argument, ctx: ExecutionContext) -> Iterator[Row]:
    yield {}


def _run_produce(op: ProduceResults, ctx: ExecutionContext) -> Iterator[Row]:
    for row in _run(op.child, ctx):
        yield row


# -- scans -------------------------------------------------------------------


def _run_all_nodes_scan(op: AllNodesScan, ctx: ExecutionContext) -> Iterator[Row]:
    for row in _run(op.child, ctx):
        for node in ctx.tx.nodes():
            if _node_matches(node, op.pattern, row, ctx):
                yield _bind(row, op.variable, node)


def _run_label_scan(op: LabelScan, ctx: ExecutionContext) -> Iterator[Row]:
    for row in _run(op.child, ctx):
        for node in ctx.tx.find_nodes(label=op.label):
            if _node_matches(node, op.pattern, row, ctx):
                yield _bind(row, op.variable, node)


def _run_property_seek(op: PropertyIndexSeek, ctx: ExecutionContext) -> Iterator[Row]:
    for row in _run(op.child, ctx):
        value = evaluate(op.value, row, ctx)
        if value is None:
            continue
        for node in ctx.tx.find_nodes(label=op.label, key=op.key, value=value):
            if _node_matches(node, op.pattern, row, ctx):
                yield _bind(row, op.variable, node)


# -- expand ------------------------------------------------------------------


def _run_expand(op: Expand, ctx: ExecutionContext) -> Iterator[Row]:
    rel = op.rel
    for row in _run(op.child, ctx):
        source = row.get(op.from_var)
        if source is None:
            continue
        if not isinstance(source, Node):
            raise QueryExecutionError(
                f"cannot expand from {op.from_var!r}: not a node"
            )
        excluded = _excluded_rel_ids(op.exclude_rel_vars, row)
        target: Optional[Node] = None
        if op.into:
            bound_target = row.get(op.to_var)
            if not isinstance(bound_target, Node):
                continue
            target = bound_target
        description = TraversalDescription(
            order=Order.DEPTH_FIRST,
            direction=op.direction,
            rel_types=rel.types or None,
            max_depth=rel.max_hops,
            min_depth=rel.min_hops,
            uniqueness=Uniqueness.NONE,
            evaluator=_make_evaluator(op, row, ctx, excluded),
        )
        for path in description.traverse(ctx.tx, source):
            end = path.end_node
            if target is not None and end.id != target.id:
                continue
            if not _node_matches(end, op.to_pattern, row, ctx):
                continue
            rel_value: object
            if rel.var_length:
                rel_value = list(path.relationships)
            else:
                rel_value = path.relationships[-1]
            new_row = _bind(row, op.rel_var, rel_value)
            if not op.into:
                new_row[op.to_var] = end
            yield new_row


def _make_evaluator(op: Expand, row: Row, ctx: ExecutionContext,
                    excluded: frozenset):
    rel_pattern = op.rel

    def evaluator(path: Path) -> Tuple[bool, bool]:
        if path.length == 0:
            return rel_pattern.min_hops == 0, True
        last = path.relationships[-1]
        if last.id in excluded:
            return False, False
        # Cypher's relationship isomorphism within one pattern: a path may
        # not traverse the same relationship twice (Uniqueness.NONE only
        # stops immediate backtracking, not longer cycles).
        seen = set()
        for relationship in path.relationships:
            if relationship.id in seen:
                return False, False
            seen.add(relationship.id)
        for key, expression in rel_pattern.properties:
            wanted = evaluate(expression, row, ctx)
            if wanted is None or last.get(key) != wanted:
                return False, False
        return True, True

    return evaluator


def _excluded_rel_ids(variables: Sequence[str], row: Row) -> frozenset:
    excluded = set()
    for variable in variables:
        value = row.get(variable)
        if isinstance(value, Relationship):
            excluded.add(value.id)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Relationship):
                    excluded.add(item.id)
    return frozenset(excluded)


# -- filters and projections -------------------------------------------------


def _run_filter(op: Filter, ctx: ExecutionContext) -> Iterator[Row]:
    for row in _run(op.child, ctx):
        scope = _order_scope(row)
        if _is_truthy(evaluate(op.predicate, scope, ctx)):
            yield row


def _run_projection(op: Projection, ctx: ExecutionContext) -> Iterator[Row]:
    for row in _run(op.child, ctx):
        projected: Row = {}
        for item in op.items:
            projected[item.alias] = evaluate(item.expression, row, ctx)
        if op.keep_source:
            projected[SOURCE_ROW_KEY] = row
        yield projected


def _run_distinct(op: Distinct, ctx: ExecutionContext) -> Iterator[Row]:
    seen = set()
    for row in _run(op.child, ctx):
        key = tuple(_freeze(row.get(column)) for column in op.columns)
        if key in seen:
            continue
        seen.add(key)
        yield row


def _run_order_by(op: OrderBy, ctx: ExecutionContext) -> Iterator[Row]:
    rows = list(_run(op.child, ctx))
    # Stable multi-key sort: apply keys right-to-left.
    for item in reversed(op.order_items):
        rows.sort(
            key=lambda row, expression=item.expression: _sort_key(
                evaluate(expression, _order_scope(row), ctx)
            ),
            reverse=not item.ascending,
        )
    for row in rows:
        if SOURCE_ROW_KEY in row:
            row = {k: v for k, v in row.items() if k != SOURCE_ROW_KEY}
        yield row


def _order_scope(row: Row) -> Row:
    """ORDER BY / WHERE scope: aliases overlay the pre-projection bindings."""
    source = row.get(SOURCE_ROW_KEY)
    if isinstance(source, dict):
        merged = dict(source)
        merged.update(row)
        merged.pop(SOURCE_ROW_KEY, None)
        return merged
    return row


def _run_skip(op: Skip, ctx: ExecutionContext) -> Iterator[Row]:
    count = _require_non_negative_int(evaluate(op.count, {}, ctx), "SKIP")
    for index, row in enumerate(_run(op.child, ctx)):
        if index >= count:
            yield row


def _run_limit(op: Limit, ctx: ExecutionContext) -> Iterator[Row]:
    count = _require_non_negative_int(evaluate(op.count, {}, ctx), "LIMIT")
    if count == 0:
        return
    produced = 0
    for row in _run(op.child, ctx):
        yield row
        produced += 1
        if produced >= count:
            return


# -- aggregation ---------------------------------------------------------------


class _Accumulator:
    """One aggregate function instance for one group."""

    def __init__(self, call: ast.FunctionCall) -> None:
        self.call = call
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None
        self.collected: List[object] = []
        self.distinct_seen = set()

    def update(self, row: Row, ctx: ExecutionContext) -> None:
        call = self.call
        if call.star:
            self.count += 1
            return
        value = evaluate(call.args[0], row, ctx)
        if value is None:
            return
        if call.distinct:
            key = _freeze(value)
            if key in self.distinct_seen:
                return
            self.distinct_seen.add(key)
        self.count += 1
        if call.name in ("sum", "avg"):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise QueryExecutionError(
                    f"{call.name}() requires numeric input, got {value!r}"
                )
            self.total += value
        elif call.name == "min":
            if self.minimum is None or _sort_key(value) < _sort_key(self.minimum):
                self.minimum = value
        elif call.name == "max":
            if self.maximum is None or _sort_key(value) > _sort_key(self.maximum):
                self.maximum = value
        elif call.name == "collect":
            self.collected.append(value)

    def result(self) -> object:
        name = self.call.name
        if name == "count":
            return self.count
        if name == "sum":
            return self.total
        if name == "avg":
            return self.total / self.count if self.count else None
        if name == "min":
            return self.minimum
        if name == "max":
            return self.maximum
        if name == "collect":
            return self.collected
        raise QueryExecutionError(f"unknown aggregate {name!r}")


def _run_aggregate(op: Aggregate, ctx: ExecutionContext) -> Iterator[Row]:
    groups: Dict[Tuple, Tuple[Row, List[_Accumulator]]] = {}
    for row in _run(op.child, ctx):
        key_values = [evaluate(item.expression, row, ctx) for item in op.group_items]
        key = tuple(_freeze(value) for value in key_values)
        entry = groups.get(key)
        if entry is None:
            accumulators = [_Accumulator(item.expression) for item in op.agg_items]
            group_row = {
                item.alias: value
                for item, value in zip(op.group_items, key_values)
            }
            entry = (group_row, accumulators)
            groups[key] = entry
        for accumulator in entry[1]:
            accumulator.update(row, ctx)
    if not groups and not op.group_items:
        # Aggregation over zero rows still produces one row (count = 0 etc).
        accumulators = [_Accumulator(item.expression) for item in op.agg_items]
        groups[()] = ({}, accumulators)
    for group_row, accumulators in groups.values():
        out = dict(group_row)
        for item, accumulator in zip(op.agg_items, accumulators):
            out[item.alias] = accumulator.result()
        yield out


# -- writes --------------------------------------------------------------------


def _run_create(op: CreateOp, ctx: ExecutionContext) -> Iterator[Row]:
    for row in _run(op.child, ctx):
        row = dict(row)
        for pattern in op.clause.patterns:
            handles: List[Node] = []
            for node_pattern in pattern.nodes:
                handles.append(_create_or_reuse_node(node_pattern, row, ctx))
            for index, rel_pattern in enumerate(pattern.rels):
                if rel_pattern.direction == "OUT":
                    start, end = handles[index], handles[index + 1]
                else:
                    start, end = handles[index + 1], handles[index]
                properties = _evaluate_property_map(rel_pattern.properties, row, ctx)
                relationship = ctx.tx.create_relationship(
                    start, end, rel_pattern.types[0], properties
                )
                ctx.stats.relationships_created += 1
                ctx.stats.properties_set += len(properties)
                if rel_pattern.variable is not None:
                    row[rel_pattern.variable] = relationship
        yield row


def _create_or_reuse_node(node_pattern: ast.NodePattern, row: Row,
                          ctx: ExecutionContext) -> Node:
    if node_pattern.variable is not None and node_pattern.variable in row:
        existing = row[node_pattern.variable]
        if not isinstance(existing, Node):
            raise QueryExecutionError(
                f"CREATE expected {node_pattern.variable!r} to be a node"
            )
        return existing
    properties = _evaluate_property_map(node_pattern.properties, row, ctx)
    node = ctx.tx.create_node(node_pattern.labels, properties)
    ctx.stats.nodes_created += 1
    ctx.stats.labels_added += len(node_pattern.labels)
    ctx.stats.properties_set += len(properties)
    if node_pattern.variable is not None:
        row[node_pattern.variable] = node
    return node


def _evaluate_property_map(entries, row: Row, ctx: ExecutionContext) -> Dict[str, object]:
    properties: Dict[str, object] = {}
    for key, expression in entries:
        value = evaluate(expression, row, ctx)
        if value is not None:
            properties[key] = value
    return properties


def _run_set(op: SetOp, ctx: ExecutionContext) -> Iterator[Row]:
    for row in _run(op.child, ctx):
        row = dict(row)
        for item in op.clause.items:
            target = row.get(item.variable)
            if target is None:
                continue
            if isinstance(item, ast.SetProperty):
                if not isinstance(target, (Node, Relationship)):
                    raise QueryExecutionError(
                        f"SET target {item.variable!r} is not a node or relationship"
                    )
                value = evaluate(item.value, row, ctx)
                if value is None:
                    refreshed = target.remove_property(item.key)
                else:
                    refreshed = target.set_property(item.key, value)
                ctx.stats.properties_set += 1
            else:
                if not isinstance(target, Node):
                    raise QueryExecutionError(
                        f"SET label target {item.variable!r} is not a node"
                    )
                refreshed = target
                for label in item.labels:
                    refreshed = refreshed.add_label(label)
                    ctx.stats.labels_added += 1
            _rebind_entity(row, refreshed)
        yield row


def _rebind_entity(row: Row, refreshed) -> None:
    """Replace *every* binding of the refreshed entity with the new handle.

    Handles cache immutable entity state, and two variables can name the same
    node (``MATCH (a), (b) ... SET a.x = 1 RETURN b.x``); updating only the
    assigned variable would leave the siblings reading stale values.
    """
    kind = Node if isinstance(refreshed, Node) else Relationship
    for variable, value in row.items():
        if isinstance(value, kind) and value.id == refreshed.id:
            row[variable] = refreshed
        elif isinstance(value, list):
            row[variable] = [
                refreshed
                if isinstance(item, kind) and item.id == refreshed.id
                else item
                for item in value
            ]


def _run_delete(op: DeleteOp, ctx: ExecutionContext) -> Iterator[Row]:
    detach = op.clause.detach
    for row in _run(op.child, ctx):
        for variable in op.clause.variables:
            value = row.get(variable)
            for entity in _flatten_entities(value):
                if isinstance(entity, Node):
                    try:
                        attached = len(ctx.tx.relationships_of(entity)) if detach else 0
                        ctx.tx.delete_node(entity, detach=detach)
                    except NodeNotFoundError:
                        continue
                    ctx.stats.nodes_deleted += 1
                    ctx.stats.relationships_deleted += attached
                elif isinstance(entity, Relationship):
                    try:
                        ctx.tx.delete_relationship(entity)
                    except RelationshipNotFoundError:
                        continue
                    ctx.stats.relationships_deleted += 1
                else:
                    raise QueryExecutionError(
                        f"DELETE target {variable!r} is not a node or relationship"
                    )
        yield row


def _flatten_entities(value: object):
    if value is None:
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            yield from _flatten_entities(item)
    else:
        yield value


# ---------------------------------------------------------------------------
# Pattern matching helpers
# ---------------------------------------------------------------------------


def _bind(row: Row, variable: str, value: object) -> Row:
    new_row = dict(row)
    new_row[variable] = value
    return new_row


def _node_matches(node: Node, pattern: ast.NodePattern, row: Row,
                  ctx: ExecutionContext) -> bool:
    for label in pattern.labels:
        if not node.has_label(label):
            return False
    for key, expression in pattern.properties:
        wanted = evaluate(expression, row, ctx)
        if wanted is None or node.get(key) != wanted:
            return False
    return True


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------


def evaluate(expression: ast.Expression, row: Row, ctx: ExecutionContext) -> object:
    """Evaluate an expression in the scope of one row (Cypher null semantics)."""
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.Parameter):
        if expression.name not in ctx.parameters:
            raise QueryExecutionError(f"missing parameter ${expression.name}")
        return ctx.parameters[expression.name]
    if isinstance(expression, ast.Variable):
        if expression.name not in row:
            raise QueryExecutionError(f"unbound variable {expression.name!r}")
        return row[expression.name]
    if isinstance(expression, ast.PropertyAccess):
        entity = evaluate(expression.entity, row, ctx)
        if entity is None:
            return None
        if isinstance(entity, (Node, Relationship)):
            return entity.get(expression.key)
        raise QueryExecutionError(
            f"cannot read property {expression.key!r} of {type(entity).__name__}"
        )
    if isinstance(expression, ast.ListLiteral):
        return [evaluate(item, row, ctx) for item in expression.items]
    if isinstance(expression, ast.Comparison):
        return _compare(
            expression.op,
            evaluate(expression.left, row, ctx),
            evaluate(expression.right, row, ctx),
        )
    if isinstance(expression, ast.IsNull):
        value = evaluate(expression.operand, row, ctx)
        return (value is not None) if expression.negated else (value is None)
    if isinstance(expression, ast.BooleanOp):
        if expression.op == "AND":
            result: object = True
            for operand in expression.operands:
                value = evaluate(operand, row, ctx)
                if value is None:
                    result = None
                elif not _is_truthy(value):
                    return False
            return result
        result = False
        for operand in expression.operands:
            value = evaluate(operand, row, ctx)
            if value is None:
                result = None
            elif _is_truthy(value):
                return True
        return result
    if isinstance(expression, ast.Not):
        value = evaluate(expression.operand, row, ctx)
        if value is None:
            return None
        return not _is_truthy(value)
    if isinstance(expression, ast.Arithmetic):
        return _arithmetic(
            expression.op,
            evaluate(expression.left, row, ctx),
            evaluate(expression.right, row, ctx),
        )
    if isinstance(expression, ast.Negate):
        value = evaluate(expression.operand, row, ctx)
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise QueryExecutionError(f"cannot negate {value!r}")
        return -value
    if isinstance(expression, ast.FunctionCall):
        return _call_function(expression, row, ctx)
    raise QueryExecutionError(f"cannot evaluate {expression!r}")


def _compare(op: str, left: object, right: object) -> Optional[bool]:
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return None
    if op == "IN":
        if not isinstance(right, (list, tuple)):
            raise QueryExecutionError("IN requires a list on its right-hand side")
        return left in right
    if op in ("STARTS WITH", "ENDS WITH", "CONTAINS"):
        if not isinstance(left, str) or not isinstance(right, str):
            return None
        if op == "STARTS WITH":
            return left.startswith(right)
        if op == "ENDS WITH":
            return left.endswith(right)
        return right in left
    raise QueryExecutionError(f"unknown comparison operator {op!r}")


def _arithmetic(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    if op == "+":
        if isinstance(left, str) and isinstance(right, str):
            return left + right
        if isinstance(left, list) and isinstance(right, list):
            return left + right
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)) \
            or isinstance(left, bool) or isinstance(right, bool):
        raise QueryExecutionError(
            f"cannot apply {op!r} to {left!r} and {right!r}"
        )
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                # Cypher integer division truncates toward zero; stay in
                # integer arithmetic (float round-tripping loses precision
                # above 2**53).
                quotient = left // right
                if quotient < 0 and quotient * right != left:
                    quotient += 1
                return quotient
            return left / right
        if op == "%":
            return left % right
    except ZeroDivisionError:
        raise QueryExecutionError("division by zero") from None
    raise QueryExecutionError(f"unknown arithmetic operator {op!r}")


def _call_function(call: ast.FunctionCall, row: Row, ctx: ExecutionContext) -> object:
    name = call.name
    if name in ast.AGGREGATE_FUNCTIONS:
        raise QueryExecutionError(
            f"aggregate {name}() is only allowed in RETURN or WITH items"
        )
    args = [evaluate(arg, row, ctx) for arg in call.args]
    if name == "coalesce":
        for value in args:
            if value is not None:
                return value
        return None
    if len(args) != 1:
        raise QueryExecutionError(f"{name}() takes exactly one argument")
    value = args[0]
    if value is None:
        return None
    if name == "id":
        if isinstance(value, (Node, Relationship)):
            return value.id
        raise QueryExecutionError("id() requires a node or relationship")
    if name == "labels":
        if isinstance(value, Node):
            return sorted(value.labels)
        raise QueryExecutionError("labels() requires a node")
    if name == "type":
        if isinstance(value, Relationship):
            return value.type
        raise QueryExecutionError("type() requires a relationship")
    if name == "size":
        if isinstance(value, (str, list, tuple)):
            return len(value)
        raise QueryExecutionError("size() requires a string or list")
    raise QueryExecutionError(f"unknown function {name!r}")


def _is_truthy(value: object) -> bool:
    return value is not None and bool(value)


def _freeze(value: object) -> object:
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


_TYPE_ORDER_NUMBER = 0
_TYPE_ORDER_STRING = 1
_TYPE_ORDER_OTHER = 2
_TYPE_ORDER_NULL = 3


def _sort_key(value: object):
    """A total order over mixed-type values (numbers < strings < rest < null)."""
    if value is None:
        return (_TYPE_ORDER_NULL, 0)
    if isinstance(value, bool):
        return (_TYPE_ORDER_NUMBER, float(value))
    if isinstance(value, (int, float)):
        return (_TYPE_ORDER_NUMBER, float(value))
    if isinstance(value, str):
        return (_TYPE_ORDER_STRING, value)
    if isinstance(value, (Node, Relationship)):
        return (_TYPE_ORDER_OTHER, str(value.id))
    return (_TYPE_ORDER_OTHER, repr(value))


def _require_non_negative_int(value: object, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise QueryExecutionError(f"{what} requires a non-negative integer")
    return value


_RUNNERS = {
    Argument: _run_argument,
    ProduceResults: _run_produce,
    AllNodesScan: _run_all_nodes_scan,
    LabelScan: _run_label_scan,
    PropertyIndexSeek: _run_property_seek,
    Expand: _run_expand,
    Filter: _run_filter,
    Projection: _run_projection,
    Distinct: _run_distinct,
    OrderBy: _run_order_by,
    Skip: _run_skip,
    Limit: _run_limit,
    Aggregate: _run_aggregate,
    CreateOp: _run_create,
    SetOp: _run_set,
    DeleteOp: _run_delete,
}
