"""Pull-based query executor.

Each plan operator becomes a Python generator over *rows* (variable → value
dicts); pulling the root pulls exactly as much of the tree as needed, so
``LIMIT 10`` over a million-node scan touches ~10 nodes.  Every read goes
through the :class:`repro.api.transaction.Transaction` the query was started
in — and the expand operators run on :mod:`repro.api.traversal` — so a whole
query, however long it takes to iterate, observes a single snapshot under
snapshot isolation.

Expressions are **compiled, not interpreted**: :func:`compile_expression`
turns an AST subtree into a nest of Python closures exactly once, and every
row evaluation afterwards is plain closure calls — no ``isinstance`` tree
walk per row.  Compiled closures are memoised per AST node (ASTs are frozen
and shared through the parse cache) and additionally pinned on the plan
operators that use them, so a plan served repeatedly from the plan cache
never recompiles anything.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import (
    NodeNotFoundError,
    QueryExecutionError,
    RelationshipNotFoundError,
)
from repro.api.transaction import Node, Relationship, Transaction
from repro.api.traversal import Order, Path, TraversalDescription, Uniqueness
from repro.query import ast
from repro.query.planner import (
    Aggregate,
    AllNodesScan,
    Argument,
    CreateOp,
    DeleteOp,
    Distinct,
    Expand,
    Filter,
    LabelScan,
    Limit,
    OrderBy,
    Plan,
    ProduceResults,
    Projection,
    PropertyIndexSeek,
    SetOp,
    Skip,
    SOURCE_ROW_KEY,
)
from repro.query.result import QueryStatistics

Row = Dict[str, object]


class ExecutionContext:
    """Everything operators need at runtime: the transaction, parameters, stats.

    ``timed`` turns on per-operator wall-time accounting (``PROFILE``):
    every pull through an operator adds its inclusive duration to the plan
    node's ``actual_time_seconds``.  Off by default — plain execution pays
    no clock calls per row.

    ``executor`` selects the operator runtime: ``"batch"`` (the default)
    runs the vectorized batch-at-a-time operators in
    :mod:`repro.query.vectorized`; ``"row"`` runs the original pull-based
    row-at-a-time generators in this module.  Both produce identical
    results — the row executor is kept as the semantic reference (the
    equivalence suite and the CI microbench guard run both).
    ``batch_size`` caps the rows per batch, and ``morsel_workers`` enables
    morsel-parallel leaf scans for eligible snapshot reads (0 disables).
    """

    def __init__(self, tx: Transaction, parameters: Mapping[str, object],
                 stats: QueryStatistics, *, timed: bool = False,
                 executor: str = "batch", batch_size: int = 1024,
                 morsel_workers: int = 0, obs=None) -> None:
        self.tx = tx
        self.parameters = parameters
        self.stats = stats
        self.timed = timed
        self.executor = executor
        self.batch_size = max(1, batch_size)
        self.morsel_workers = morsel_workers
        self.obs = obs


def run_plan(plan: Plan, ctx: ExecutionContext) -> Iterator[List[object]]:
    """Run a plan, yielding result rows as value lists (lazy)."""
    if ctx.executor == "batch":
        from repro.query.vectorized import run_plan_batches

        return run_plan_batches(plan, ctx)
    return run_plan_rows(plan, ctx)


def run_plan_rows(plan: Plan, ctx: ExecutionContext) -> Iterator[List[object]]:
    """Run a plan on the row-at-a-time executor, yielding result value lists."""
    root = plan.root
    columns = root.columns
    for row in _run(root, ctx):
        if columns:
            yield [row.get(column) for column in columns]


# ---------------------------------------------------------------------------
# Operator dispatch
# ---------------------------------------------------------------------------


def _run(op, ctx: ExecutionContext) -> Iterator[Row]:
    """Instantiate one operator's generator, counting rows into the plan node."""
    runner = _RUNNERS[type(op)]
    op.actual_rows = 0
    op.actual_batches = None
    if ctx.timed:
        op.actual_time_seconds = 0.0
        return _timed_runner(op, runner, ctx)

    def counted() -> Iterator[Row]:
        for row in runner(op, ctx):
            op.actual_rows += 1
            yield row

    return counted()


def _timed_runner(op, runner, ctx: ExecutionContext) -> Iterator[Row]:
    """PROFILE variant of :func:`_run`: rows counted *and* pulls timed.

    The measured time is inclusive — pulling an operator pulls its children
    from inside the same ``next()`` call — matching how PROFILE output is
    conventionally read (a parent's time covers its subtree).
    """
    generator = runner(op, ctx)
    while True:
        started = perf_counter()
        try:
            row = next(generator)
        except StopIteration:
            op.actual_time_seconds += perf_counter() - started
            return
        op.actual_time_seconds += perf_counter() - started
        op.actual_rows += 1
        yield row


def _run_argument(op: Argument, ctx: ExecutionContext) -> Iterator[Row]:
    yield {}


def _run_produce(op: ProduceResults, ctx: ExecutionContext) -> Iterator[Row]:
    for row in _run(op.child, ctx):
        yield row


# -- scans -------------------------------------------------------------------


def _run_all_nodes_scan(op: AllNodesScan, ctx: ExecutionContext) -> Iterator[Row]:
    matcher = _pattern_matcher(op, op.pattern)
    for row in _run(op.child, ctx):
        for node in ctx.tx.nodes():
            if matcher is None or matcher(node, row, ctx):
                yield _bind(row, op.variable, node)


def _run_label_scan(op: LabelScan, ctx: ExecutionContext) -> Iterator[Row]:
    matcher = _pattern_matcher(op, op.pattern)
    for row in _run(op.child, ctx):
        for node in ctx.tx.find_nodes(label=op.label):
            if matcher is None or matcher(node, row, ctx):
                yield _bind(row, op.variable, node)


def _run_property_seek(op: PropertyIndexSeek, ctx: ExecutionContext) -> Iterator[Row]:
    value_fn = compiled(op.value)
    matcher = _pattern_matcher(op, op.pattern)
    for row in _run(op.child, ctx):
        value = value_fn(row, ctx)
        if value is None:
            continue
        for node in ctx.tx.find_nodes(label=op.label, key=op.key, value=value):
            if matcher is None or matcher(node, row, ctx):
                yield _bind(row, op.variable, node)


# -- expand ------------------------------------------------------------------


def _run_expand(op: Expand, ctx: ExecutionContext) -> Iterator[Row]:
    for row in _run(op.child, ctx):
        yield from _expand_row(op, row, ctx)


def _expand_row(op: Expand, row: Row, ctx: ExecutionContext) -> Iterator[Row]:
    """Expand one input row through the hop's traversal (shared with the
    batch executor, which falls back to this for var-length patterns)."""
    rel = op.rel
    to_matcher = _pattern_matcher(op, op.to_pattern, attr="_to_matcher")
    rel_prop_fns = _rel_property_fns(op)
    source = row.get(op.from_var)
    if source is None:
        return
    if not isinstance(source, Node):
        raise QueryExecutionError(
            f"cannot expand from {op.from_var!r}: not a node"
        )
    excluded = _excluded_rel_ids(op.exclude_rel_vars, row)
    target: Optional[Node] = None
    if op.into:
        bound_target = row.get(op.to_var)
        if not isinstance(bound_target, Node):
            return
        target = bound_target
    description = TraversalDescription(
        order=Order.DEPTH_FIRST,
        direction=op.direction,
        rel_types=rel.types or None,
        max_depth=rel.max_hops,
        min_depth=rel.min_hops,
        uniqueness=Uniqueness.NONE,
        evaluator=_make_evaluator(rel, rel_prop_fns, row, ctx, excluded),
    )
    for path in description.traverse(ctx.tx, source):
        end = path.end_node
        if target is not None and end.id != target.id:
            continue
        if to_matcher is not None and not to_matcher(end, row, ctx):
            continue
        rel_value: object
        if rel.var_length:
            rel_value = list(path.relationships)
        else:
            rel_value = path.relationships[-1]
        new_row = _bind(row, op.rel_var, rel_value)
        if not op.into:
            new_row[op.to_var] = end
        yield new_row


def _rel_property_fns(op: Expand) -> Tuple[Tuple[str, CompiledExpression], ...]:
    """Compiled (key, value expression) pairs of the hop's property map."""
    fns = getattr(op, "_rel_prop_fns", None)
    if fns is None:
        fns = tuple((key, compiled(expr)) for key, expr in op.rel.properties)
        op._rel_prop_fns = fns
    return fns


def _make_evaluator(rel_pattern, rel_prop_fns, row: Row, ctx: ExecutionContext,
                    excluded: frozenset):
    min_hops = rel_pattern.min_hops

    def evaluator(path: Path) -> Tuple[bool, bool]:
        if path.length == 0:
            return min_hops == 0, True
        last = path.relationships[-1]
        if last.id in excluded:
            return False, False
        # Cypher's relationship isomorphism within one pattern: a path may
        # not traverse the same relationship twice (Uniqueness.NONE only
        # stops immediate backtracking, not longer cycles).
        seen = set()
        for relationship in path.relationships:
            if relationship.id in seen:
                return False, False
            seen.add(relationship.id)
        for key, value_fn in rel_prop_fns:
            wanted = value_fn(row, ctx)
            if wanted is None or last.data.properties.get(key) != wanted:
                return False, False
        return True, True

    return evaluator


def _excluded_rel_ids(variables: Sequence[str], row: Row) -> frozenset:
    excluded = set()
    for variable in variables:
        value = row.get(variable)
        if isinstance(value, Relationship):
            excluded.add(value.id)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Relationship):
                    excluded.add(item.id)
    return frozenset(excluded)


# -- filters and projections -------------------------------------------------


def _run_filter(op: Filter, ctx: ExecutionContext) -> Iterator[Row]:
    predicate_fn = compiled(op.predicate)
    for row in _run(op.child, ctx):
        scope = _order_scope(row)
        value = predicate_fn(scope, ctx)
        if value is not None and value:
            yield row


def _run_projection(op: Projection, ctx: ExecutionContext) -> Iterator[Row]:
    item_fns = [(item.alias, compiled(item.expression)) for item in op.items]
    keep_source = op.keep_source
    for row in _run(op.child, ctx):
        projected: Row = {alias: fn(row, ctx) for alias, fn in item_fns}
        if keep_source:
            projected[SOURCE_ROW_KEY] = row
        yield projected


def _run_distinct(op: Distinct, ctx: ExecutionContext) -> Iterator[Row]:
    seen = set()
    for row in _run(op.child, ctx):
        key = tuple(_freeze(row.get(column)) for column in op.columns)
        if key in seen:
            continue
        seen.add(key)
        yield row


def _run_order_by(op: OrderBy, ctx: ExecutionContext) -> Iterator[Row]:
    rows = list(_run(op.child, ctx))
    # Stable multi-key sort: apply keys right-to-left.
    for item in reversed(op.order_items):
        key_fn = compiled(item.expression)
        rows.sort(
            key=lambda row, fn=key_fn: _sort_key(fn(_order_scope(row), ctx)),
            reverse=not item.ascending,
        )
    for row in rows:
        if SOURCE_ROW_KEY in row:
            row = {k: v for k, v in row.items() if k != SOURCE_ROW_KEY}
        yield row


def _order_scope(row: Row) -> Row:
    """ORDER BY / WHERE scope: aliases overlay the pre-projection bindings."""
    source = row.get(SOURCE_ROW_KEY)
    if isinstance(source, dict):
        merged = dict(source)
        merged.update(row)
        merged.pop(SOURCE_ROW_KEY, None)
        return merged
    return row


def _run_skip(op: Skip, ctx: ExecutionContext) -> Iterator[Row]:
    count = _require_non_negative_int(evaluate(op.count, {}, ctx), "SKIP")
    for index, row in enumerate(_run(op.child, ctx)):
        if index >= count:
            yield row


def _run_limit(op: Limit, ctx: ExecutionContext) -> Iterator[Row]:
    count = _require_non_negative_int(evaluate(op.count, {}, ctx), "LIMIT")
    if count == 0:
        return
    produced = 0
    for row in _run(op.child, ctx):
        yield row
        produced += 1
        if produced >= count:
            return


# -- aggregation ---------------------------------------------------------------


class _Accumulator:
    """One aggregate function instance for one group."""

    def __init__(self, call: ast.FunctionCall, arg_fn: Optional[CompiledExpression]) -> None:
        self.call = call
        self.arg_fn = arg_fn
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None
        self.collected: List[object] = []
        self.distinct_seen = set()

    def update(self, row: Row, ctx: ExecutionContext) -> None:
        if self.call.star:
            self.count += 1
            return
        self.update_value(self.arg_fn(row, ctx))

    def update_value(self, value: object) -> None:
        """Fold one already-evaluated argument value into the aggregate.

        The batch executor evaluates the argument expression over a whole
        batch at once and feeds the values here; ``count(*)`` ignores the
        value entirely.
        """
        call = self.call
        if call.star:
            self.count += 1
            return
        if value is None:
            return
        if call.distinct:
            key = _freeze(value)
            if key in self.distinct_seen:
                return
            self.distinct_seen.add(key)
        self.count += 1
        if call.name in ("sum", "avg"):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise QueryExecutionError(
                    f"{call.name}() requires numeric input, got {value!r}"
                )
            self.total += value
        elif call.name == "min":
            if self.minimum is None or _sort_key(value) < _sort_key(self.minimum):
                self.minimum = value
        elif call.name == "max":
            if self.maximum is None or _sort_key(value) > _sort_key(self.maximum):
                self.maximum = value
        elif call.name == "collect":
            self.collected.append(value)

    def update_slice(self, column: Optional[List[object]],
                     indexes: List[int]) -> None:
        """Fold ``column[i]`` for every ``i`` in ``indexes`` (batch executor).

        ``column`` is ``None`` for ``count(*)`` — the whole slice counts.
        Plain ``count(x)`` short-circuits to a non-``None`` tally; everything
        else falls back to the per-value fold.
        """
        call = self.call
        if column is None or call.star:
            self.count += len(indexes)
            return
        if call.name == "count" and not call.distinct:
            self.count += sum(
                1 for index in indexes if column[index] is not None
            )
            return
        update_value = self.update_value
        for index in indexes:
            update_value(column[index])

    def result(self) -> object:
        name = self.call.name
        if name == "count":
            return self.count
        if name == "sum":
            return self.total
        if name == "avg":
            return self.total / self.count if self.count else None
        if name == "min":
            return self.minimum
        if name == "max":
            return self.maximum
        if name == "collect":
            return self.collected
        raise QueryExecutionError(f"unknown aggregate {name!r}")


def _run_aggregate(op: Aggregate, ctx: ExecutionContext) -> Iterator[Row]:
    group_fns = [(item.alias, compiled(item.expression)) for item in op.group_items]
    agg_specs = [
        (
            item.expression,
            None if item.expression.star else compiled(item.expression.args[0]),
        )
        for item in op.agg_items
    ]
    groups: Dict[Tuple, Tuple[Row, List[_Accumulator]]] = {}
    for row in _run(op.child, ctx):
        key_values = [fn(row, ctx) for _alias, fn in group_fns]
        key = tuple(_freeze(value) for value in key_values)
        entry = groups.get(key)
        if entry is None:
            accumulators = [_Accumulator(call, fn) for call, fn in agg_specs]
            group_row = {
                alias: value
                for (alias, _fn), value in zip(group_fns, key_values)
            }
            entry = (group_row, accumulators)
            groups[key] = entry
        for accumulator in entry[1]:
            accumulator.update(row, ctx)
    if not groups and not op.group_items:
        # Aggregation over zero rows still produces one row (count = 0 etc).
        accumulators = [_Accumulator(call, fn) for call, fn in agg_specs]
        groups[()] = ({}, accumulators)
    for group_row, accumulators in groups.values():
        out = dict(group_row)
        for item, accumulator in zip(op.agg_items, accumulators):
            out[item.alias] = accumulator.result()
        yield out


# -- writes --------------------------------------------------------------------


def _run_create(op: CreateOp, ctx: ExecutionContext) -> Iterator[Row]:
    for row in _run(op.child, ctx):
        yield _apply_create(op, dict(row), ctx)


def _apply_create(op: CreateOp, row: Row, ctx: ExecutionContext) -> Row:
    """Create the clause's patterns for one (already-copied) row."""
    for pattern in op.clause.patterns:
        handles: List[Node] = []
        for node_pattern in pattern.nodes:
            handles.append(_create_or_reuse_node(node_pattern, row, ctx))
        for index, rel_pattern in enumerate(pattern.rels):
            if rel_pattern.direction == "OUT":
                start, end = handles[index], handles[index + 1]
            else:
                start, end = handles[index + 1], handles[index]
            properties = _evaluate_property_map(rel_pattern.properties, row, ctx)
            relationship = ctx.tx.create_relationship(
                start, end, rel_pattern.types[0], properties
            )
            ctx.stats.relationships_created += 1
            ctx.stats.properties_set += len(properties)
            if rel_pattern.variable is not None:
                row[rel_pattern.variable] = relationship
    return row


def _create_or_reuse_node(node_pattern: ast.NodePattern, row: Row,
                          ctx: ExecutionContext) -> Node:
    if node_pattern.variable is not None and node_pattern.variable in row:
        existing = row[node_pattern.variable]
        if not isinstance(existing, Node):
            raise QueryExecutionError(
                f"CREATE expected {node_pattern.variable!r} to be a node"
            )
        return existing
    properties = _evaluate_property_map(node_pattern.properties, row, ctx)
    node = ctx.tx.create_node(node_pattern.labels, properties)
    ctx.stats.nodes_created += 1
    ctx.stats.labels_added += len(node_pattern.labels)
    ctx.stats.properties_set += len(properties)
    if node_pattern.variable is not None:
        row[node_pattern.variable] = node
    return node


def _evaluate_property_map(entries, row: Row, ctx: ExecutionContext) -> Dict[str, object]:
    properties: Dict[str, object] = {}
    for key, expression in entries:
        value = evaluate(expression, row, ctx)
        if value is not None:
            properties[key] = value
    return properties


def _run_set(op: SetOp, ctx: ExecutionContext) -> Iterator[Row]:
    for row in _run(op.child, ctx):
        yield _apply_set(op, dict(row), ctx)


def _apply_set(op: SetOp, row: Row, ctx: ExecutionContext) -> Row:
    """Apply the SET items to one (already-copied) row."""
    for item in op.clause.items:
        target = row.get(item.variable)
        if target is None:
            continue
        if isinstance(item, ast.SetProperty):
            if not isinstance(target, (Node, Relationship)):
                raise QueryExecutionError(
                    f"SET target {item.variable!r} is not a node or relationship"
                )
            value = evaluate(item.value, row, ctx)
            if value is None:
                refreshed = target.remove_property(item.key)
            else:
                refreshed = target.set_property(item.key, value)
            ctx.stats.properties_set += 1
        else:
            if not isinstance(target, Node):
                raise QueryExecutionError(
                    f"SET label target {item.variable!r} is not a node"
                )
            refreshed = target
            for label in item.labels:
                refreshed = refreshed.add_label(label)
                ctx.stats.labels_added += 1
        _rebind_entity(row, refreshed)
    return row


def _rebind_entity(row: Row, refreshed) -> None:
    """Replace *every* binding of the refreshed entity with the new handle.

    Handles cache immutable entity state, and two variables can name the same
    node (``MATCH (a), (b) ... SET a.x = 1 RETURN b.x``); updating only the
    assigned variable would leave the siblings reading stale values.
    """
    kind = Node if isinstance(refreshed, Node) else Relationship
    for variable, value in row.items():
        if isinstance(value, kind) and value.id == refreshed.id:
            row[variable] = refreshed
        elif isinstance(value, list):
            row[variable] = [
                refreshed
                if isinstance(item, kind) and item.id == refreshed.id
                else item
                for item in value
            ]


def _run_delete(op: DeleteOp, ctx: ExecutionContext) -> Iterator[Row]:
    for row in _run(op.child, ctx):
        yield _apply_delete(op, row, ctx)


def _apply_delete(op: DeleteOp, row: Row, ctx: ExecutionContext) -> Row:
    """Delete the clause's entities for one row (the row is not modified)."""
    detach = op.clause.detach
    for variable in op.clause.variables:
        value = row.get(variable)
        for entity in _flatten_entities(value):
            if isinstance(entity, Node):
                try:
                    attached = len(ctx.tx.relationships_of(entity)) if detach else 0
                    ctx.tx.delete_node(entity, detach=detach)
                except NodeNotFoundError:
                    continue
                ctx.stats.nodes_deleted += 1
                ctx.stats.relationships_deleted += attached
            elif isinstance(entity, Relationship):
                try:
                    ctx.tx.delete_relationship(entity)
                except RelationshipNotFoundError:
                    continue
                ctx.stats.relationships_deleted += 1
            else:
                raise QueryExecutionError(
                    f"DELETE target {variable!r} is not a node or relationship"
                )
    return row


def _flatten_entities(value: object):
    if value is None:
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            yield from _flatten_entities(item)
    else:
        yield value


# ---------------------------------------------------------------------------
# Pattern matching helpers
# ---------------------------------------------------------------------------


def _bind(row: Row, variable: str, value: object) -> Row:
    new_row = dict(row)
    new_row[variable] = value
    return new_row


def _pattern_matcher(op, pattern: ast.NodePattern, *, attr: str = "_matcher"):
    """A compiled node-pattern check, pinned on the plan operator.

    Returns ``None`` for the empty pattern (every node matches), so callers
    can skip the call entirely.  Pinning on the operator means a plan served
    from the plan cache carries its matchers across executions.
    """
    cached = getattr(op, attr, _PATTERN_UNSET)
    if cached is not _PATTERN_UNSET:
        return cached
    matcher = _compile_node_pattern(pattern)
    setattr(op, attr, matcher)
    return matcher


_PATTERN_UNSET = object()


def _compile_node_pattern(pattern: ast.NodePattern):
    labels = tuple(pattern.labels)
    prop_fns = tuple(
        (key, compiled(expression)) for key, expression in pattern.properties
    )
    if not labels and not prop_fns:
        return None

    def matches(node: Node, row: Row, ctx: ExecutionContext) -> bool:
        data = node.data
        for label in labels:
            if label not in data.labels:
                return False
        properties = data.properties
        for key, value_fn in prop_fns:
            wanted = value_fn(row, ctx)
            if wanted is None or properties.get(key) != wanted:
                return False
        return True

    return matches


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------

#: A compiled expression: called once per row, returns the expression value.
CompiledExpression = Callable[[Row, "ExecutionContext"], object]

#: Memo of compiled closures keyed by AST node identity.  Entries hold a
#: strong reference to the AST node, so an id can never be recycled while its
#: entry is live; the table is cleared wholesale when it grows past the
#: limit (compilation is cheap — the memo only exists so hot ASTs shared via
#: the parse/plan caches compile once).
_COMPILED: Dict[int, Tuple[ast.Expression, CompiledExpression]] = {}
_COMPILED_LIMIT = 4096


def compiled(expression: ast.Expression) -> CompiledExpression:
    """The memoised compiled form of ``expression``."""
    entry = _COMPILED.get(id(expression))
    if entry is not None and entry[0] is expression:
        return entry[1]
    fn = compile_expression(expression)
    if len(_COMPILED) >= _COMPILED_LIMIT:
        _COMPILED.clear()
    _COMPILED[id(expression)] = (expression, fn)
    return fn


def evaluate(expression: ast.Expression, row: Row, ctx: ExecutionContext) -> object:
    """Evaluate an expression in the scope of one row (Cypher null semantics)."""
    return compiled(expression)(row, ctx)


def compile_expression(expression: ast.Expression) -> CompiledExpression:
    """Compile one AST subtree into a closure (no per-row tree walks).

    Every branch below mirrors one case of the old interpreter; the
    ``isinstance`` dispatch happens here, once, instead of on every row.
    """
    if isinstance(expression, ast.Literal):
        value = expression.value

        def literal_fn(row: Row, ctx: ExecutionContext) -> object:
            return value

        return literal_fn
    if isinstance(expression, ast.Parameter):
        name = expression.name

        def parameter_fn(row: Row, ctx: ExecutionContext) -> object:
            try:
                return ctx.parameters[name]
            except KeyError:
                raise QueryExecutionError(f"missing parameter ${name}") from None

        return parameter_fn
    if isinstance(expression, ast.Variable):
        name = expression.name

        def variable_fn(row: Row, ctx: ExecutionContext) -> object:
            try:
                return row[name]
            except KeyError:
                raise QueryExecutionError(f"unbound variable {name!r}") from None

        return variable_fn
    if isinstance(expression, ast.PropertyAccess):
        key = expression.key
        if isinstance(expression.entity, ast.Variable):
            # The overwhelmingly common shape (``n.prop``): skip the generic
            # entity closure and read the handle's immutable data directly.
            variable = expression.entity.name

            def direct_property_fn(row: Row, ctx: ExecutionContext) -> object:
                try:
                    entity = row[variable]
                except KeyError:
                    raise QueryExecutionError(
                        f"unbound variable {variable!r}"
                    ) from None
                if entity is None:
                    return None
                if isinstance(entity, (Node, Relationship)):
                    return entity.data.properties.get(key)
                raise QueryExecutionError(
                    f"cannot read property {key!r} of {type(entity).__name__}"
                )

            return direct_property_fn
        entity_fn = compile_expression(expression.entity)

        def property_fn(row: Row, ctx: ExecutionContext) -> object:
            entity = entity_fn(row, ctx)
            if entity is None:
                return None
            if isinstance(entity, (Node, Relationship)):
                return entity.data.properties.get(key)
            raise QueryExecutionError(
                f"cannot read property {key!r} of {type(entity).__name__}"
            )

        return property_fn
    if isinstance(expression, ast.ListLiteral):
        item_fns = tuple(compile_expression(item) for item in expression.items)

        def list_fn(row: Row, ctx: ExecutionContext) -> object:
            return [fn(row, ctx) for fn in item_fns]

        return list_fn
    if isinstance(expression, ast.Comparison):
        op = expression.op
        left_fn = compile_expression(expression.left)
        right_fn = compile_expression(expression.right)

        def comparison_fn(row: Row, ctx: ExecutionContext) -> object:
            return _compare(op, left_fn(row, ctx), right_fn(row, ctx))

        return comparison_fn
    if isinstance(expression, ast.IsNull):
        operand_fn = compile_expression(expression.operand)
        if expression.negated:

            def is_not_null_fn(row: Row, ctx: ExecutionContext) -> object:
                return operand_fn(row, ctx) is not None

            return is_not_null_fn

        def is_null_fn(row: Row, ctx: ExecutionContext) -> object:
            return operand_fn(row, ctx) is None

        return is_null_fn
    if isinstance(expression, ast.BooleanOp):
        operand_fns = tuple(
            compile_expression(operand) for operand in expression.operands
        )
        if expression.op == "AND":

            def and_fn(row: Row, ctx: ExecutionContext) -> object:
                result: object = True
                for fn in operand_fns:
                    value = fn(row, ctx)
                    if value is None:
                        result = None
                    elif not value:
                        return False
                return result

            return and_fn

        def or_fn(row: Row, ctx: ExecutionContext) -> object:
            result: object = False
            for fn in operand_fns:
                value = fn(row, ctx)
                if value is None:
                    result = None
                elif value:
                    return True
            return result

        return or_fn
    if isinstance(expression, ast.Not):
        operand_fn = compile_expression(expression.operand)

        def not_fn(row: Row, ctx: ExecutionContext) -> object:
            value = operand_fn(row, ctx)
            if value is None:
                return None
            return not _is_truthy(value)

        return not_fn
    if isinstance(expression, ast.Arithmetic):
        op = expression.op
        left_fn = compile_expression(expression.left)
        right_fn = compile_expression(expression.right)

        def arithmetic_fn(row: Row, ctx: ExecutionContext) -> object:
            return _arithmetic(op, left_fn(row, ctx), right_fn(row, ctx))

        return arithmetic_fn
    if isinstance(expression, ast.Negate):
        operand_fn = compile_expression(expression.operand)

        def negate_fn(row: Row, ctx: ExecutionContext) -> object:
            value = operand_fn(row, ctx)
            if value is None:
                return None
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise QueryExecutionError(f"cannot negate {value!r}")
            return -value

        return negate_fn
    if isinstance(expression, ast.FunctionCall):
        return _compile_function(expression)
    raise QueryExecutionError(f"cannot evaluate {expression!r}")


def _compare(op: str, left: object, right: object) -> Optional[bool]:
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return None
    if op == "IN":
        if not isinstance(right, (list, tuple)):
            raise QueryExecutionError("IN requires a list on its right-hand side")
        return left in right
    if op in ("STARTS WITH", "ENDS WITH", "CONTAINS"):
        if not isinstance(left, str) or not isinstance(right, str):
            return None
        if op == "STARTS WITH":
            return left.startswith(right)
        if op == "ENDS WITH":
            return left.endswith(right)
        return right in left
    raise QueryExecutionError(f"unknown comparison operator {op!r}")


def _arithmetic(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    if op == "+":
        if isinstance(left, str) and isinstance(right, str):
            return left + right
        if isinstance(left, list) and isinstance(right, list):
            return left + right
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)) \
            or isinstance(left, bool) or isinstance(right, bool):
        raise QueryExecutionError(
            f"cannot apply {op!r} to {left!r} and {right!r}"
        )
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                # Cypher integer division truncates toward zero; stay in
                # integer arithmetic (float round-tripping loses precision
                # above 2**53).
                quotient = left // right
                if quotient < 0 and quotient * right != left:
                    quotient += 1
                return quotient
            return left / right
        if op == "%":
            return left % right
    except ZeroDivisionError:
        raise QueryExecutionError("division by zero") from None
    raise QueryExecutionError(f"unknown arithmetic operator {op!r}")


def _compile_function(call: ast.FunctionCall) -> CompiledExpression:
    name = call.name
    if name in ast.AGGREGATE_FUNCTIONS:

        def aggregate_misuse_fn(row: Row, ctx: ExecutionContext) -> object:
            raise QueryExecutionError(
                f"aggregate {name}() is only allowed in RETURN or WITH items"
            )

        return aggregate_misuse_fn
    arg_fns = tuple(compile_expression(arg) for arg in call.args)
    if name == "coalesce":

        def coalesce_fn(row: Row, ctx: ExecutionContext) -> object:
            for fn in arg_fns:
                value = fn(row, ctx)
                if value is not None:
                    return value
            return None

        return coalesce_fn
    # Preserve the interpreter's evaluation order for every remaining name,
    # known or not: arity first, then the null short-circuit (so even an
    # unknown function applied to null yields null), then dispatch.
    if len(arg_fns) != 1:

        def arity_fn(row: Row, ctx: ExecutionContext) -> object:
            raise QueryExecutionError(f"{name}() takes exactly one argument")

        return arity_fn
    arg_fn = arg_fns[0]
    scalar = _SCALAR_FUNCTIONS.get(name)

    def scalar_fn(row: Row, ctx: ExecutionContext) -> object:
        value = arg_fn(row, ctx)
        if value is None:
            return None
        if scalar is None:
            raise QueryExecutionError(f"unknown function {name!r}")
        return scalar(value)

    return scalar_fn


def _fn_id(value: object) -> object:
    if isinstance(value, (Node, Relationship)):
        return value.id
    raise QueryExecutionError("id() requires a node or relationship")


def _fn_labels(value: object) -> object:
    if isinstance(value, Node):
        return sorted(value.labels)
    raise QueryExecutionError("labels() requires a node")


def _fn_type(value: object) -> object:
    if isinstance(value, Relationship):
        return value.type
    raise QueryExecutionError("type() requires a relationship")


def _fn_size(value: object) -> object:
    if isinstance(value, (str, list, tuple)):
        return len(value)
    raise QueryExecutionError("size() requires a string or list")


_SCALAR_FUNCTIONS = {
    "id": _fn_id,
    "labels": _fn_labels,
    "type": _fn_type,
    "size": _fn_size,
}


def _is_truthy(value: object) -> bool:
    return value is not None and bool(value)


def _freeze(value: object) -> object:
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


_TYPE_ORDER_NUMBER = 0
_TYPE_ORDER_STRING = 1
_TYPE_ORDER_OTHER = 2
_TYPE_ORDER_NULL = 3


def _sort_key(value: object):
    """A total order over mixed-type values (numbers < strings < rest < null)."""
    if value is None:
        return (_TYPE_ORDER_NULL, 0)
    if isinstance(value, bool):
        return (_TYPE_ORDER_NUMBER, float(value))
    if isinstance(value, (int, float)):
        return (_TYPE_ORDER_NUMBER, float(value))
    if isinstance(value, str):
        return (_TYPE_ORDER_STRING, value)
    if isinstance(value, (Node, Relationship)):
        return (_TYPE_ORDER_OTHER, str(value.id))
    return (_TYPE_ORDER_OTHER, repr(value))


def _require_non_negative_int(value: object, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise QueryExecutionError(f"{what} requires a non-negative integer")
    return value


_RUNNERS = {
    Argument: _run_argument,
    ProduceResults: _run_produce,
    AllNodesScan: _run_all_nodes_scan,
    LabelScan: _run_label_scan,
    PropertyIndexSeek: _run_property_seek,
    Expand: _run_expand,
    Filter: _run_filter,
    Projection: _run_projection,
    Distinct: _run_distinct,
    OrderBy: _run_order_by,
    Skip: _run_skip,
    Limit: _run_limit,
    Aggregate: _run_aggregate,
    CreateOp: _run_create,
    SetOp: _run_set,
    DeleteOp: _run_delete,
}
