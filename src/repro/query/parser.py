"""Recursive-descent parser for the Cypher-subset query language.

One function per grammar production, all driven off a
:class:`~repro.query.lexer.TokenStream`.  The parser performs purely
syntactic validation (clause order, directed relationships in ``CREATE``);
semantic checks such as unbound variables are the planner's job, because they
depend on what earlier clauses bind.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import QuerySyntaxError
from repro.query import ast
from repro.query.lexer import (
    FLOAT,
    IDENT,
    INTEGER,
    KEYWORD,
    PARAMETER,
    STRING,
    TokenStream,
    tokenize,
)

#: Scalar (non-aggregate) functions known to the executor.
SCALAR_FUNCTIONS = frozenset({"id", "labels", "type", "size", "coalesce"})


def parse(text: str) -> ast.Query:
    """Parse a query string into an :class:`~repro.query.ast.Query`."""
    if not isinstance(text, str) or not text.strip():
        raise QuerySyntaxError("empty query")
    stream = TokenStream(tokenize(text))
    explain = bool(stream.accept_keyword("EXPLAIN"))
    profile = False if explain else bool(stream.accept_keyword("PROFILE"))
    clauses: List[ast.Clause] = []
    while not stream.at_end():
        clauses.append(_parse_clause(stream))
    if not clauses:
        raise QuerySyntaxError("query has no clauses")
    _validate_clause_order(clauses)
    return ast.Query(clauses=tuple(clauses), explain=explain, profile=profile)


def _validate_clause_order(clauses: List[ast.Clause]) -> None:
    for index, clause in enumerate(clauses):
        is_last = index == len(clauses) - 1
        if isinstance(clause, ast.ProjectionClause) and clause.is_return and not is_last:
            raise QuerySyntaxError("RETURN must be the final clause")
        if isinstance(clause, ast.ProjectionClause) and not clause.is_return and is_last:
            raise QuerySyntaxError("a query cannot end with WITH")
    last = clauses[-1]
    if isinstance(last, ast.MatchClause):
        raise QuerySyntaxError("a MATCH query needs a RETURN or a write clause")


def _parse_clause(stream: TokenStream) -> ast.Clause:
    token = stream.current
    if token.is_keyword("MATCH"):
        return _parse_match(stream)
    if token.is_keyword("CREATE"):
        return _parse_create(stream)
    if token.is_keyword("SET"):
        return _parse_set(stream)
    if token.is_keyword("DELETE") or token.is_keyword("DETACH"):
        return _parse_delete(stream)
    if token.is_keyword("RETURN"):
        return _parse_projection(stream, is_return=True)
    if token.is_keyword("WITH"):
        return _parse_projection(stream, is_return=False)
    raise stream.error("expected a clause (MATCH, CREATE, SET, DELETE, WITH, RETURN)")


# ---------------------------------------------------------------------------
# MATCH / CREATE
# ---------------------------------------------------------------------------


def _parse_match(stream: TokenStream) -> ast.MatchClause:
    stream.expect_keyword("MATCH")
    patterns = [_parse_path_pattern(stream)]
    while stream.accept_punct(","):
        patterns.append(_parse_path_pattern(stream))
    where = None
    if stream.accept_keyword("WHERE"):
        where = _parse_expression(stream)
    return ast.MatchClause(patterns=tuple(patterns), where=where)


def _parse_create(stream: TokenStream) -> ast.CreateClause:
    stream.expect_keyword("CREATE")
    patterns = [_parse_path_pattern(stream)]
    while stream.accept_punct(","):
        patterns.append(_parse_path_pattern(stream))
    for pattern in patterns:
        for rel in pattern.rels:
            if rel.direction == "BOTH":
                raise QuerySyntaxError(
                    "CREATE requires a directed relationship (-[:TYPE]-> or <-[:TYPE]-)"
                )
            if len(rel.types) != 1:
                raise QuerySyntaxError(
                    "CREATE requires exactly one relationship type"
                )
            if rel.var_length:
                raise QuerySyntaxError("CREATE cannot use variable-length patterns")
    return ast.CreateClause(patterns=tuple(patterns))


def _parse_path_pattern(stream: TokenStream) -> ast.PathPattern:
    nodes = [_parse_node_pattern(stream)]
    rels: List[ast.RelPattern] = []
    while stream.current.is_punct("-") or stream.current.is_punct("<"):
        rels.append(_parse_rel_pattern(stream))
        nodes.append(_parse_node_pattern(stream))
    return ast.PathPattern(nodes=tuple(nodes), rels=tuple(rels))


def _parse_node_pattern(stream: TokenStream) -> ast.NodePattern:
    stream.expect_punct("(")
    variable = None
    if stream.current.kind == IDENT and not stream.current.is_punct(")"):
        variable = stream.advance().text
    labels: List[str] = []
    while stream.accept_punct(":"):
        labels.append(stream.expect_name("label").text)
    properties = _parse_property_map(stream) if stream.current.is_punct("{") else ()
    stream.expect_punct(")")
    return ast.NodePattern(
        variable=variable, labels=tuple(labels), properties=properties
    )


def _parse_rel_pattern(stream: TokenStream) -> ast.RelPattern:
    incoming = False
    if stream.accept_punct("<"):
        incoming = True
    stream.expect_punct("-")
    variable = None
    types: List[str] = []
    properties: Tuple[Tuple[str, ast.Expression], ...] = ()
    min_hops, max_hops, var_length = 1, 1, False
    if stream.accept_punct("["):
        if stream.current.kind == IDENT:
            variable = stream.advance().text
        if stream.accept_punct(":"):
            types.append(stream.expect_name("relationship type").text)
            while stream.accept_punct("|"):
                stream.accept_punct(":")
                types.append(stream.expect_name("relationship type").text)
        if stream.accept_punct("*"):
            var_length = True
            min_hops, max_hops = _parse_hop_range(stream)
        if stream.current.is_punct("{"):
            properties = _parse_property_map(stream)
        stream.expect_punct("]")
    stream.expect_punct("-")
    outgoing = bool(stream.accept_punct(">"))
    if incoming and outgoing:
        raise QuerySyntaxError("a relationship pattern cannot point both ways")
    direction = "IN" if incoming else ("OUT" if outgoing else "BOTH")
    return ast.RelPattern(
        variable=variable,
        types=tuple(types),
        properties=properties,
        direction=direction,
        min_hops=min_hops,
        max_hops=max_hops,
        var_length=var_length,
    )


def _parse_hop_range(stream: TokenStream) -> Tuple[int, Optional[int]]:
    """The ``*``, ``*n``, ``*n..m``, ``*..m`` and ``*n..`` forms."""
    min_hops: int = 1
    max_hops: Optional[int] = None
    if stream.current.kind == INTEGER:
        min_hops = int(stream.advance().text)
        max_hops = min_hops
    if stream.accept_punct(".."):
        max_hops = None
        if stream.current.kind == INTEGER:
            max_hops = int(stream.advance().text)
    if max_hops is not None and max_hops < min_hops:
        raise QuerySyntaxError(
            f"variable-length range *{min_hops}..{max_hops} is empty"
        )
    return min_hops, max_hops


def _parse_property_map(stream: TokenStream) -> Tuple[Tuple[str, ast.Expression], ...]:
    stream.expect_punct("{")
    entries: List[Tuple[str, ast.Expression]] = []
    if not stream.current.is_punct("}"):
        while True:
            key = stream.expect_name("property key").text
            stream.expect_punct(":")
            entries.append((key, _parse_expression(stream)))
            if not stream.accept_punct(","):
                break
    stream.expect_punct("}")
    return tuple(entries)


# ---------------------------------------------------------------------------
# SET / DELETE
# ---------------------------------------------------------------------------


def _parse_set(stream: TokenStream) -> ast.SetClause:
    stream.expect_keyword("SET")
    items: List[Union[ast.SetProperty, ast.SetLabels]] = []
    while True:
        variable = stream.expect_identifier("variable").text
        if stream.accept_punct("."):
            key = stream.expect_name("property key").text
            stream.expect_punct("=")
            items.append(ast.SetProperty(variable, key, _parse_expression(stream)))
        elif stream.current.is_punct(":"):
            labels: List[str] = []
            while stream.accept_punct(":"):
                labels.append(stream.expect_name("label").text)
            items.append(ast.SetLabels(variable, tuple(labels)))
        else:
            raise stream.error("expected '.' or ':' after SET variable")
        if not stream.accept_punct(","):
            break
    return ast.SetClause(items=tuple(items))


def _parse_delete(stream: TokenStream) -> ast.DeleteClause:
    detach = bool(stream.accept_keyword("DETACH"))
    stream.expect_keyword("DELETE")
    variables = [stream.expect_identifier("variable").text]
    while stream.accept_punct(","):
        variables.append(stream.expect_identifier("variable").text)
    return ast.DeleteClause(variables=tuple(variables), detach=detach)


# ---------------------------------------------------------------------------
# RETURN / WITH
# ---------------------------------------------------------------------------


def _parse_projection(stream: TokenStream, *, is_return: bool) -> ast.ProjectionClause:
    stream.expect_keyword("RETURN" if is_return else "WITH")
    distinct = bool(stream.accept_keyword("DISTINCT"))
    items = [_parse_return_item(stream)]
    while stream.accept_punct(","):
        items.append(_parse_return_item(stream))
    order_by: List[ast.OrderItem] = []
    if stream.accept_keyword("ORDER"):
        stream.expect_keyword("BY")
        while True:
            expression = _parse_expression(stream)
            ascending = True
            if stream.accept_keyword("DESC"):
                ascending = False
            else:
                stream.accept_keyword("ASC")
            order_by.append(ast.OrderItem(expression=expression, ascending=ascending))
            if not stream.accept_punct(","):
                break
    skip = _parse_expression(stream) if stream.accept_keyword("SKIP") else None
    limit = _parse_expression(stream) if stream.accept_keyword("LIMIT") else None
    where = None
    if not is_return and stream.accept_keyword("WHERE"):
        where = _parse_expression(stream)
    return ast.ProjectionClause(
        items=tuple(items),
        distinct=distinct,
        order_by=tuple(order_by),
        skip=skip,
        limit=limit,
        where=where,
        is_return=is_return,
    )


def _parse_return_item(stream: TokenStream) -> ast.ReturnItem:
    expression = _parse_expression(stream)
    if stream.accept_keyword("AS"):
        alias = stream.expect_identifier("alias").text
    else:
        alias = ast.render_expression(expression)
    return ast.ReturnItem(expression=expression, alias=alias)


# ---------------------------------------------------------------------------
# Expressions (precedence climbing)
# ---------------------------------------------------------------------------


def _parse_expression(stream: TokenStream) -> ast.Expression:
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> ast.Expression:
    operands = [_parse_and(stream)]
    while stream.accept_keyword("OR"):
        operands.append(_parse_and(stream))
    if len(operands) == 1:
        return operands[0]
    return ast.BooleanOp(op="OR", operands=tuple(operands))


def _parse_and(stream: TokenStream) -> ast.Expression:
    operands = [_parse_not(stream)]
    while stream.accept_keyword("AND"):
        operands.append(_parse_not(stream))
    if len(operands) == 1:
        return operands[0]
    return ast.BooleanOp(op="AND", operands=tuple(operands))


def _parse_not(stream: TokenStream) -> ast.Expression:
    if stream.accept_keyword("NOT"):
        return ast.Not(operand=_parse_not(stream))
    return _parse_comparison(stream)


_COMPARISON_PUNCT = ("<=", ">=", "<>", "=", "<", ">")


def _parse_comparison(stream: TokenStream) -> ast.Expression:
    left = _parse_additive(stream)
    token = stream.current
    for op in _COMPARISON_PUNCT:
        if token.is_punct(op):
            stream.advance()
            return ast.Comparison(op=op, left=left, right=_parse_additive(stream))
    if token.is_keyword("IN"):
        stream.advance()
        return ast.Comparison(op="IN", left=left, right=_parse_additive(stream))
    if token.is_keyword("STARTS"):
        stream.advance()
        stream.expect_keyword("WITH")
        return ast.Comparison(op="STARTS WITH", left=left, right=_parse_additive(stream))
    if token.is_keyword("ENDS"):
        stream.advance()
        stream.expect_keyword("WITH")
        return ast.Comparison(op="ENDS WITH", left=left, right=_parse_additive(stream))
    if token.is_keyword("CONTAINS"):
        stream.advance()
        return ast.Comparison(op="CONTAINS", left=left, right=_parse_additive(stream))
    if token.is_keyword("IS"):
        stream.advance()
        negated = bool(stream.accept_keyword("NOT"))
        stream.expect_keyword("NULL")
        return ast.IsNull(operand=left, negated=negated)
    return left


def _parse_additive(stream: TokenStream) -> ast.Expression:
    left = _parse_multiplicative(stream)
    while True:
        if stream.accept_punct("+"):
            left = ast.Arithmetic(op="+", left=left, right=_parse_multiplicative(stream))
        elif stream.accept_punct("-"):
            left = ast.Arithmetic(op="-", left=left, right=_parse_multiplicative(stream))
        else:
            return left


def _parse_multiplicative(stream: TokenStream) -> ast.Expression:
    left = _parse_unary(stream)
    while True:
        if stream.accept_punct("*"):
            left = ast.Arithmetic(op="*", left=left, right=_parse_unary(stream))
        elif stream.accept_punct("/"):
            left = ast.Arithmetic(op="/", left=left, right=_parse_unary(stream))
        elif stream.accept_punct("%"):
            left = ast.Arithmetic(op="%", left=left, right=_parse_unary(stream))
        else:
            return left


def _parse_unary(stream: TokenStream) -> ast.Expression:
    if stream.accept_punct("-"):
        return ast.Negate(operand=_parse_unary(stream))
    if stream.accept_punct("+"):
        return _parse_unary(stream)
    return _parse_postfix(stream)


def _parse_postfix(stream: TokenStream) -> ast.Expression:
    expression = _parse_atom(stream)
    # Property keys are names: keywords are allowed after the dot (n.limit).
    while stream.current.is_punct(".") and stream.peek().kind in (IDENT, KEYWORD):
        stream.advance()
        key = stream.advance().text
        expression = ast.PropertyAccess(entity=expression, key=key)
    return expression


def _parse_atom(stream: TokenStream) -> ast.Expression:
    token = stream.current
    if token.kind == INTEGER:
        stream.advance()
        return ast.Literal(int(token.text))
    if token.kind == FLOAT:
        stream.advance()
        return ast.Literal(float(token.text))
    if token.kind == STRING:
        stream.advance()
        return ast.Literal(token.text)
    if token.kind == PARAMETER:
        stream.advance()
        return ast.Parameter(token.text)
    if token.is_keyword("TRUE"):
        stream.advance()
        return ast.Literal(True)
    if token.is_keyword("FALSE"):
        stream.advance()
        return ast.Literal(False)
    if token.is_keyword("NULL"):
        stream.advance()
        return ast.Literal(None)
    if token.is_punct("("):
        stream.advance()
        inner = _parse_expression(stream)
        stream.expect_punct(")")
        return inner
    if token.is_punct("["):
        stream.advance()
        items: List[ast.Expression] = []
        if not stream.current.is_punct("]"):
            while True:
                items.append(_parse_expression(stream))
                if not stream.accept_punct(","):
                    break
        stream.expect_punct("]")
        return ast.ListLiteral(items=tuple(items))
    if token.kind == IDENT:
        if stream.peek().is_punct("("):
            return _parse_function_call(stream)
        stream.advance()
        return ast.Variable(token.text)
    raise stream.error("expected an expression")


def _parse_function_call(stream: TokenStream) -> ast.FunctionCall:
    name_token = stream.advance()
    name = name_token.text.lower()
    if name not in ast.AGGREGATE_FUNCTIONS and name not in SCALAR_FUNCTIONS:
        raise QuerySyntaxError(
            f"unknown function {name_token.text!r}", name_token.position
        )
    stream.expect_punct("(")
    if stream.accept_punct("*"):
        stream.expect_punct(")")
        if name != "count":
            raise QuerySyntaxError(f"{name}(*) is not valid", name_token.position)
        return ast.FunctionCall(name=name, star=True)
    distinct = bool(stream.accept_keyword("DISTINCT"))
    args: List[ast.Expression] = []
    if not stream.current.is_punct(")"):
        while True:
            args.append(_parse_expression(stream))
            if not stream.accept_punct(","):
                break
    stream.expect_punct(")")
    if name in ast.AGGREGATE_FUNCTIONS and len(args) != 1:
        raise QuerySyntaxError(
            f"aggregate {name}() takes exactly one argument", name_token.position
        )
    return ast.FunctionCall(name=name, args=tuple(args), distinct=distinct)
