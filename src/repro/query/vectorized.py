"""Vectorized batch-at-a-time query executor.

The row executor in :mod:`repro.query.executor` pays the full Python
per-row toll — a generator frame, a dict copy and a closure call per
operator per row.  This module runs the same plan operators over
:class:`RowBatch` objects instead: columnar batches of up to
``ctx.batch_size`` rows (one list per bound variable), with expressions
applied per batch via list comprehensions and the read path batched end to
end — ``read_nodes_many`` / ``relationships_of_many`` resolve a whole
batch's version chains in one engine visit, and under SERIALIZABLE one
tracker-mutex visit registers the whole batch's SIREADs.

Semantics are identical to the row executor by construction: expression
evaluation reuses the *same* compiled closures (falling back to per-row
calls wherever vectorization could change Cypher's short-circuit error
behaviour), single-hop expansion reproduces the depth-first traversal's
LIFO output order, and var-length patterns and write clauses delegate to
the row operator bodies outright.  ``tests/test_batch_equivalence.py``
pins the two executors against each other.

Morsel-style parallelism: leaf scans the planner marked ``parallel``
(estimated rows above the engine's ``morsel_threshold`` with
``morsel_workers`` > 1) split their id range into per-worker morsels
dispatched across a shared thread pool.  Workers call the engine's
lock-free ``read_committed_versions`` directly — snapshot reads never take
locks, so sharing the transaction's snapshot across threads is safe — and
the scan is only eligible when the transaction is a plain snapshot reader
(no SSI read tracking, no pending safe-snapshot census, no buffered
writes), so all bookkeeping stays on the query thread.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import QueryExecutionError
from repro.api.transaction import Node, Relationship
from repro.api.traversal import batch_expand
from repro.core.si_transaction import SnapshotTransaction
from repro.graph.entity import EntityKey, EntityKind, NodeData
from repro.query import ast
from repro.query.executor import (
    ExecutionContext,
    Row,
    _Accumulator,
    _apply_create,
    _apply_delete,
    _apply_set,
    _arithmetic,
    _compare,
    _excluded_rel_ids,
    _expand_row,
    _freeze,
    _pattern_matcher,
    _rel_property_fns,
    _require_non_negative_int,
    _SCALAR_FUNCTIONS,
    _sort_key,
    compiled,
    evaluate,
)
from repro.query.planner import (
    Aggregate,
    AllNodesScan,
    Argument,
    CreateOp,
    DeleteOp,
    Distinct,
    Expand,
    Filter,
    LabelScan,
    Limit,
    OrderBy,
    Plan,
    ProduceResults,
    Projection,
    PropertyIndexSeek,
    SetOp,
    Skip,
    SOURCE_ROW_KEY,
)


class RowBatch:
    """A columnar batch of rows: one value list per bound variable.

    ``columns`` is the ordered tuple of variable names, ``data`` maps each
    name to a list of ``size`` values.  Batches are immutable by
    convention — operators build new ones rather than mutating inputs
    (several operators pass their input batch through unchanged).
    """

    __slots__ = ("columns", "data", "size")

    def __init__(self, columns: Tuple[str, ...], data: Dict[str, List[object]],
                 size: int) -> None:
        self.columns = columns
        self.data = data
        self.size = size


class _RowView:
    """A zero-copy mapping view of one batch row (reusable via ``index``).

    Implements enough of the Mapping protocol for the row executor's
    compiled closures and pattern matchers: ``view[name]`` raises
    ``KeyError`` for an unknown variable exactly like a row dict, which the
    closures convert to the usual "unbound variable" error.
    """

    __slots__ = ("_data", "index")

    def __init__(self, data: Dict[str, List[object]]) -> None:
        self._data = data
        self.index = 0

    def __getitem__(self, name: str) -> object:
        return self._data[name][self.index]

    def get(self, name: str, default: object = None) -> object:
        column = self._data.get(name)
        return default if column is None else column[self.index]

    def __contains__(self, name: object) -> bool:
        return name in self._data

    def __iter__(self):
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def keys(self):
        return self._data.keys()

    def items(self):
        index = self.index
        return [(name, column[index]) for name, column in self._data.items()]


_EMPTY_ROW: Row = {}
_EMPTY_FROZENSET: frozenset = frozenset()


# ---------------------------------------------------------------------------
# Batch construction helpers
# ---------------------------------------------------------------------------


def _take(batch: RowBatch, indexes: Sequence[int]) -> RowBatch:
    """The selected rows of a batch, in the given order."""
    data = {
        name: [column[i] for i in indexes] for name, column in batch.data.items()
    }
    return RowBatch(batch.columns, data, len(indexes))


def _slice(batch: RowBatch, start: int, stop: int) -> RowBatch:
    """A contiguous row range of a batch."""
    data = {name: column[start:stop] for name, column in batch.data.items()}
    return RowBatch(batch.columns, data, stop - start)


def _materialise_rows(batch: RowBatch) -> List[Row]:
    """The batch as plain row dicts (for per-row fallback operators)."""
    data = batch.data
    columns = batch.columns
    return [
        {name: data[name][index] for name in columns}
        for index in range(batch.size)
    ]


def _batch_from_rows(rows: List[Row]) -> RowBatch:
    """Rebuild a batch from row dicts (columns are the union, missing → None)."""
    columns: List[str] = []
    for row in rows:
        for name in row:
            if name not in columns:
                columns.append(name)
    data = {name: [row.get(name) for row in rows] for name in columns}
    return RowBatch(tuple(columns), data, len(rows))


def _scoped_rows(batch: RowBatch) -> Iterator[Row]:
    """Per-row evaluation scopes, overlaying the ORDER BY source bindings.

    Mirrors the row executor's ``_order_scope``: when a projection kept its
    pre-projection rows under ``SOURCE_ROW_KEY``, aliases overlay the
    source bindings (alias wins).  Without a source column this yields a
    single reusable :class:`_RowView` — no dict copies at all.
    """
    data = batch.data
    source_column = data.get(SOURCE_ROW_KEY)
    if source_column is not None:
        names = [name for name in batch.columns if name != SOURCE_ROW_KEY]
        for index in range(batch.size):
            merged = dict(source_column[index])
            for name in names:
                merged[name] = data[name][index]
            yield merged
    else:
        view = _RowView(data)
        for index in range(batch.size):
            view.index = index
            yield view


# ---------------------------------------------------------------------------
# Batch expression application
# ---------------------------------------------------------------------------


def _apply(expression: ast.Expression, batch: RowBatch,
           ctx: ExecutionContext) -> List[object]:
    """Evaluate an expression over every row of a batch.

    The hot shapes — literals, parameters, column references, direct
    property reads, comparisons, arithmetic, null checks and the scalar
    functions — are vectorized as whole-column list comprehensions.  Only
    expression forms whose per-row evaluation both executors perform
    unconditionally are vectorized; anything that short-circuits
    *evaluation* per row (AND/OR, coalesce) runs the row-compiled closure
    per row so error behaviour stays identical to the row executor.
    """
    size = batch.size
    data = batch.data
    kind = type(expression)
    if kind is ast.Literal:
        return [expression.value] * size
    if kind is ast.Parameter:
        try:
            value = ctx.parameters[expression.name]
        except KeyError:
            raise QueryExecutionError(
                f"missing parameter ${expression.name}"
            ) from None
        return [value] * size
    if kind is ast.Variable:
        column = data.get(expression.name)
        if column is not None:
            return list(column)
        # Not a batch column: resolve through the source scope (or raise
        # the usual unbound-variable error) via the generic path below.
    elif kind is ast.PropertyAccess and type(expression.entity) is ast.Variable:
        column = data.get(expression.entity.name)
        if column is not None:
            key = expression.key
            values: List[object] = []
            append = values.append
            for entity in column:
                if isinstance(entity, (Node, Relationship)):
                    append(entity.data.properties.get(key))
                elif entity is None:
                    append(None)
                else:
                    raise QueryExecutionError(
                        f"cannot read property {key!r} of {type(entity).__name__}"
                    )
            return values
    elif kind is ast.Comparison:
        op = expression.op
        left = _apply(expression.left, batch, ctx)
        right = _apply(expression.right, batch, ctx)
        return [_compare(op, lhs, rhs) for lhs, rhs in zip(left, right)]
    elif kind is ast.Arithmetic:
        op = expression.op
        left = _apply(expression.left, batch, ctx)
        right = _apply(expression.right, batch, ctx)
        return [_arithmetic(op, lhs, rhs) for lhs, rhs in zip(left, right)]
    elif kind is ast.IsNull:
        operand = _apply(expression.operand, batch, ctx)
        if expression.negated:
            return [value is not None for value in operand]
        return [value is None for value in operand]
    elif kind is ast.FunctionCall:
        scalar = _SCALAR_FUNCTIONS.get(expression.name)
        if scalar is not None and len(expression.args) == 1:
            operand = _apply(expression.args[0], batch, ctx)
            return [None if value is None else scalar(value) for value in operand]
    fn = compiled(expression)
    return [fn(scope, ctx) for scope in _scoped_rows(batch)]


# ---------------------------------------------------------------------------
# Morsel-parallel leaf scans
# ---------------------------------------------------------------------------

#: Shared worker pool for morsel-parallel scans, created on first use.  One
#: pool per process — morsels from concurrent queries interleave on it.
_MORSEL_POOL: Optional[ThreadPoolExecutor] = None
_MORSEL_POOL_LOCK = threading.Lock()


def _morsel_pool(workers: int) -> ThreadPoolExecutor:
    global _MORSEL_POOL
    pool = _MORSEL_POOL
    if pool is None:
        with _MORSEL_POOL_LOCK:
            pool = _MORSEL_POOL
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=max(2, workers),
                    thread_name_prefix="repro-morsel",
                )
                _MORSEL_POOL = pool
    return pool


def _morsel_transaction(ctx: ExecutionContext) -> Optional[SnapshotTransaction]:
    """The engine transaction, iff this scan may run across the morsel pool.

    Eligible means: a multi-version snapshot transaction that is a *plain
    snapshot reader* right now — no SSI read tracking (``cc_record``), no
    pending safe-snapshot census, and no buffered writes.  Those three all
    require per-read bookkeeping or a write overlay, which would have to be
    synchronised across workers; the plain reader's visibility resolution
    is completely lock-free and therefore trivially shareable.
    """
    if ctx.morsel_workers <= 1:
        return None
    etxn = getattr(ctx.tx, "_txn", None)
    if not isinstance(etxn, SnapshotTransaction):
        return None
    if etxn.cc_record is not None or etxn._pending_reader is not None:
        return None
    if etxn._writes:
        return None
    return etxn


def _morsel_nodes(ctx: ExecutionContext, etxn: SnapshotTransaction,
                  node_ids: Sequence[int]) -> List[Node]:
    """Resolve many node payloads across the morsel pool, preserving order."""
    keys = [EntityKey.node(node_id) for node_id in node_ids]
    engine = etxn._engine
    start_ts = etxn.snapshot.start_ts
    workers = ctx.morsel_workers
    etxn.reads_performed += len(keys)
    if len(keys) < workers * 2:
        payloads = engine.read_committed_versions(keys, start_ts)
    else:
        pool = _morsel_pool(workers)
        chunk = (len(keys) + workers - 1) // workers
        futures = [
            pool.submit(
                engine.read_committed_versions, keys[offset:offset + chunk],
                start_ts,
            )
            for offset in range(0, len(keys), chunk)
        ]
        payloads = []
        for future in futures:
            payloads.extend(future.result())
    tx = ctx.tx
    return [Node(tx, data) for data in payloads if isinstance(data, NodeData)]


def _all_committed_node_ids(etxn: SnapshotTransaction) -> List[int]:
    """Candidate node ids in the order ``iter_nodes`` would visit them.

    The eligible morsel transaction has no own writes, so candidates are
    the cached version chains followed by the persistent store.
    """
    engine = etxn._engine
    seen = set()
    ids: List[int] = []
    for key in engine.versions.keys():
        if key.kind is EntityKind.NODE and key.entity_id not in seen:
            seen.add(key.entity_id)
            ids.append(key.entity_id)
    for entity_id in engine.store.iter_node_ids():
        if entity_id not in seen:
            seen.add(entity_id)
            ids.append(entity_id)
    return ids


# ---------------------------------------------------------------------------
# Operator runners
# ---------------------------------------------------------------------------


def run_plan_batches(plan: Plan, ctx: ExecutionContext) -> Iterator[List[object]]:
    """Run a plan batch-at-a-time, yielding result rows as value lists."""
    root = plan.root
    columns = root.columns
    obs = ctx.obs
    for batch in _run_batches(root, ctx):
        if obs is not None:
            obs.query_batches.inc()
            obs.query_batch_rows.observe(batch.size)
        if not columns:
            continue
        size = batch.size
        column_lists = [
            batch.data[name] if name in batch.data else [None] * size
            for name in columns
        ]
        for values in zip(*column_lists):
            yield list(values)


def _run_batches(op, ctx: ExecutionContext) -> Iterator[RowBatch]:
    """Instantiate one operator's batch generator, counting rows and batches."""
    runner = _BATCH_RUNNERS[type(op)]
    op.actual_rows = 0
    op.actual_batches = 0
    if ctx.timed:
        op.actual_time_seconds = 0.0
        return _timed_batches(op, runner, ctx)

    def counted() -> Iterator[RowBatch]:
        for batch in runner(op, ctx):
            if batch.size == 0:
                continue
            op.actual_rows += batch.size
            op.actual_batches += 1
            yield batch

    return counted()


def _timed_batches(op, runner, ctx: ExecutionContext) -> Iterator[RowBatch]:
    """PROFILE variant of :func:`_run_batches` (inclusive per-pull timing)."""
    generator = runner(op, ctx)
    while True:
        started = perf_counter()
        try:
            batch = next(generator)
        except StopIteration:
            op.actual_time_seconds += perf_counter() - started
            return
        op.actual_time_seconds += perf_counter() - started
        if batch.size == 0:
            continue
        op.actual_rows += batch.size
        op.actual_batches += 1
        yield batch


def _argument_batches(op: Argument, ctx: ExecutionContext) -> Iterator[RowBatch]:
    yield RowBatch((), {}, 1)


def _produce_batches(op: ProduceResults, ctx: ExecutionContext) -> Iterator[RowBatch]:
    yield from _run_batches(op.child, ctx)


def _rowwise(op, ctx: ExecutionContext, per_row) -> Iterator[RowBatch]:
    """Run a per-row operator body over materialised rows (fallback path)."""
    batch_size = ctx.batch_size
    pending: List[Row] = []
    for in_batch in _run_batches(op.child, ctx):
        for row in _materialise_rows(in_batch):
            for out_row in per_row(op, row, ctx):
                pending.append(out_row)
                if len(pending) >= batch_size:
                    yield _batch_from_rows(pending)
                    pending = []
    if pending:
        yield _batch_from_rows(pending)


# -- scans -------------------------------------------------------------------


def _input_rows(op, ctx: ExecutionContext):
    """Yield ``(in_batch, index, row_scope)`` triples from the child operator."""
    for in_batch in _run_batches(op.child, ctx):
        if in_batch.columns:
            view = _RowView(in_batch.data)
            for index in range(in_batch.size):
                view.index = index
                yield in_batch, index, view
        else:
            for index in range(in_batch.size):
                yield in_batch, index, _EMPTY_ROW


def _bind_column(in_batch: RowBatch, index: int, variable: str,
                 values: List[object]) -> RowBatch:
    """One input row replicated against a column of freshly-bound values."""
    size = len(values)
    data = {
        name: [column[index]] * size for name, column in in_batch.data.items()
    }
    columns = in_batch.columns
    if variable not in data:
        columns = columns + (variable,)
    data[variable] = values
    return RowBatch(columns, data, size)


def _emit_scan_rows(op, ctx: ExecutionContext, in_batch: RowBatch, index: int,
                    nodes, matcher, row) -> Iterator[RowBatch]:
    """Bind matching scanned nodes to ``op.variable`` in batch-size chunks."""
    batch_size = ctx.batch_size
    matched: List[Node] = []
    for node in nodes:
        if matcher is None or matcher(node, row, ctx):
            matched.append(node)
            if len(matched) >= batch_size:
                yield _bind_column(in_batch, index, op.variable, matched)
                matched = []
    if matched:
        yield _bind_column(in_batch, index, op.variable, matched)


def _all_nodes_scan_batches(op: AllNodesScan, ctx: ExecutionContext) -> Iterator[RowBatch]:
    matcher = _pattern_matcher(op, op.pattern)
    for in_batch, index, row in _input_rows(op, ctx):
        if getattr(op, "parallel", False):
            etxn = _morsel_transaction(ctx)
            if etxn is not None:
                nodes = _morsel_nodes(ctx, etxn, _all_committed_node_ids(etxn))
                yield from _emit_scan_rows(op, ctx, in_batch, index, nodes, matcher, row)
                continue
        yield from _emit_scan_rows(
            op, ctx, in_batch, index, ctx.tx.nodes(), matcher, row
        )


def _label_scan_batches(op: LabelScan, ctx: ExecutionContext) -> Iterator[RowBatch]:
    matcher = _pattern_matcher(op, op.pattern)
    for in_batch, index, row in _input_rows(op, ctx):
        if getattr(op, "parallel", False):
            etxn = _morsel_transaction(ctx)
            if etxn is not None:
                ids = sorted(etxn.find_nodes_by_label(op.label))
                nodes = _morsel_nodes(ctx, etxn, ids)
                yield from _emit_scan_rows(op, ctx, in_batch, index, nodes, matcher, row)
                continue
        yield from _emit_scan_rows(
            op, ctx, in_batch, index, ctx.tx.find_nodes(label=op.label),
            matcher, row,
        )


def _property_seek_batches(op: PropertyIndexSeek, ctx: ExecutionContext) -> Iterator[RowBatch]:
    value_fn = compiled(op.value)
    matcher = _pattern_matcher(op, op.pattern)
    for in_batch, index, row in _input_rows(op, ctx):
        value = value_fn(row, ctx)
        if value is None:
            continue
        nodes = ctx.tx.find_nodes(label=op.label, key=op.key, value=value)
        yield from _emit_scan_rows(op, ctx, in_batch, index, nodes, matcher, row)


# -- expand ------------------------------------------------------------------


def _expand_batches(op: Expand, ctx: ExecutionContext) -> Iterator[RowBatch]:
    rel = op.rel
    if rel.var_length or rel.min_hops != 1 or rel.max_hops != 1:
        # Variable-length patterns need the real traversal machinery; run
        # the row operator body per materialised row.
        yield from _rowwise(op, ctx, _expand_row)
        return
    to_matcher = _pattern_matcher(op, op.to_pattern, attr="_to_matcher")
    rel_prop_fns = _rel_property_fns(op)
    from_var = op.from_var
    rel_types = rel.types or None
    direction = op.direction
    batch_size = ctx.batch_size
    bind_target = getattr(op, "bind_target", True)
    for in_batch in _run_batches(op.child, ctx):
        data = in_batch.data
        source_column = data.get(from_var)
        if source_column is None:
            raise QueryExecutionError(f"unbound variable {from_var!r}")
        sources: List[Node] = []
        source_indexes: List[int] = []
        for index, source in enumerate(source_column):
            if source is None:
                continue
            if not isinstance(source, Node):
                raise QueryExecutionError(
                    f"cannot expand from {from_var!r}: not a node"
                )
            sources.append(source)
            source_indexes.append(index)
        if not sources:
            continue
        if bind_target:
            expanded = batch_expand(ctx.tx, sources, direction, rel_types)
        else:
            # Nothing downstream can observe the far-end node (anonymous
            # terminal target, no label/property checks), so skip the
            # neighbour point-reads entirely and pair each relationship
            # with a placeholder.
            expanded = [
                [(relationship, None) for relationship in relationships]
                for relationships in ctx.tx.relationships_of_many(
                    sources, direction, rel_types
                )
            ]
        out_indexes: List[int] = []
        out_rels: List[object] = []
        out_nodes: List[Node] = []
        row = _RowView(data)
        for index, pairs in zip(source_indexes, expanded):
            row.index = index
            excluded = (
                _excluded_rel_ids(op.exclude_rel_vars, row)
                if op.exclude_rel_vars
                else _EMPTY_FROZENSET
            )
            target_id: Optional[int] = None
            if op.into:
                bound_target = row.get(op.to_var)
                if not isinstance(bound_target, Node):
                    continue
                target_id = bound_target.id
            # The row executor's depth-first traversal pops its frontier
            # LIFO, so single-hop expansion yields relationships in reverse
            # adjacency order; match it so both executors produce identical
            # row orders.
            for relationship, neighbour in reversed(pairs):
                if relationship.id in excluded:
                    continue
                if rel_prop_fns:
                    wanted_ok = True
                    for key, value_fn in rel_prop_fns:
                        wanted = value_fn(row, ctx)
                        if wanted is None or \
                                relationship.data.properties.get(key) != wanted:
                            wanted_ok = False
                            break
                    if not wanted_ok:
                        continue
                if target_id is not None and neighbour.id != target_id:
                    continue
                if to_matcher is not None and not to_matcher(neighbour, row, ctx):
                    continue
                out_indexes.append(index)
                out_rels.append(relationship)
                out_nodes.append(neighbour)
                if len(out_indexes) >= batch_size:
                    yield _expand_output(in_batch, op, out_indexes, out_rels, out_nodes)
                    out_indexes, out_rels, out_nodes = [], [], []
        if out_indexes:
            yield _expand_output(in_batch, op, out_indexes, out_rels, out_nodes)


def _expand_output(in_batch: RowBatch, op: Expand, indexes: List[int],
                   rels: List[object], nodes: List[Node]) -> RowBatch:
    """Input rows replicated per expansion, with the hop's bindings appended."""
    data = {
        name: [column[i] for i in indexes]
        for name, column in in_batch.data.items()
    }
    columns = in_batch.columns
    if op.rel_var not in data:
        columns = columns + (op.rel_var,)
    data[op.rel_var] = rels
    if not op.into and getattr(op, "bind_target", True):
        if op.to_var not in data:
            columns = columns + (op.to_var,)
        data[op.to_var] = nodes
    return RowBatch(columns, data, len(indexes))


# -- filters and projections -------------------------------------------------


def _filter_batches(op: Filter, ctx: ExecutionContext) -> Iterator[RowBatch]:
    predicate = op.predicate
    for batch in _run_batches(op.child, ctx):
        values = _apply(predicate, batch, ctx)
        keep = [
            index for index, value in enumerate(values)
            if value is not None and value
        ]
        if len(keep) == batch.size:
            yield batch
        elif keep:
            yield _take(batch, keep)


def _projection_batches(op: Projection, ctx: ExecutionContext) -> Iterator[RowBatch]:
    aliases = tuple(item.alias for item in op.items)
    keep_source = op.keep_source
    for batch in _run_batches(op.child, ctx):
        data = {
            item.alias: _apply(item.expression, batch, ctx) for item in op.items
        }
        columns = aliases
        if keep_source:
            data[SOURCE_ROW_KEY] = _materialise_rows(batch)
            columns = aliases + (SOURCE_ROW_KEY,)
        yield RowBatch(columns, data, batch.size)


def _distinct_batches(op: Distinct, ctx: ExecutionContext) -> Iterator[RowBatch]:
    seen = set()
    for batch in _run_batches(op.child, ctx):
        cols = [batch.data.get(name) for name in op.columns]
        keep: List[int] = []
        for index in range(batch.size):
            key = tuple(
                _freeze(col[index]) if col is not None else None for col in cols
            )
            if key not in seen:
                seen.add(key)
                keep.append(index)
        if len(keep) == batch.size:
            yield batch
        elif keep:
            yield _take(batch, keep)


def _order_by_batches(op: OrderBy, ctx: ExecutionContext) -> Iterator[RowBatch]:
    batches = list(_run_batches(op.child, ctx))
    if not batches:
        return
    # Evaluate every order key once per row (through the source scope, like
    # the row executor's merged ORDER BY scope), then sort global row
    # indexes stably, right-to-left — identical key-by-key semantics.
    key_columns: List[List[object]] = [[] for _ in op.order_items]
    for batch in batches:
        for slot, item in enumerate(op.order_items):
            key_columns[slot].extend(
                _sort_key(value) for value in _apply(item.expression, batch, ctx)
            )
    out_columns = tuple(
        name for name in batches[0].columns if name != SOURCE_ROW_KEY
    )
    flat: Dict[str, List[object]] = {name: [] for name in out_columns}
    for batch in batches:
        for name in out_columns:
            column = batch.data.get(name)
            if column is None:
                flat[name].extend([None] * batch.size)
            else:
                flat[name].extend(column)
    total = sum(batch.size for batch in batches)
    order = list(range(total))
    for slot in range(len(op.order_items) - 1, -1, -1):
        keys = key_columns[slot]
        order.sort(
            key=keys.__getitem__, reverse=not op.order_items[slot].ascending
        )
    batch_size = ctx.batch_size
    for start in range(0, total, batch_size):
        chunk = order[start:start + batch_size]
        data = {
            name: [column[i] for i in chunk] for name, column in flat.items()
        }
        yield RowBatch(out_columns, data, len(chunk))


def _skip_batches(op: Skip, ctx: ExecutionContext) -> Iterator[RowBatch]:
    count = _require_non_negative_int(evaluate(op.count, {}, ctx), "SKIP")
    skipped = 0
    for batch in _run_batches(op.child, ctx):
        if skipped >= count:
            yield batch
            continue
        if skipped + batch.size <= count:
            skipped += batch.size
            continue
        start = count - skipped
        skipped = count
        yield _slice(batch, start, batch.size)


def _limit_batches(op: Limit, ctx: ExecutionContext) -> Iterator[RowBatch]:
    count = _require_non_negative_int(evaluate(op.count, {}, ctx), "LIMIT")
    if count == 0:
        return
    produced = 0
    for batch in _run_batches(op.child, ctx):
        remaining = count - produced
        if batch.size <= remaining:
            produced += batch.size
            yield batch
            if produced >= count:
                return
        else:
            yield _slice(batch, 0, remaining)
            return


# -- aggregation ---------------------------------------------------------------


def _fused_expand_count(
    op: Aggregate, ctx: ExecutionContext
) -> Optional[Iterator[RowBatch]]:
    """``Expand -> Aggregate(count(r))`` folded into adjacency-length sums.

    When an aggregate sits directly on an unbound-target single-hop expand
    and every aggregate is a plain ``count(rel_var)`` over that expand's
    relationship variable (with every group key a pre-expand variable), the
    per-relationship rows exist only to be counted.  Summing the adjacency
    list lengths per source row produces the same groups and the same
    counts without materialising them.  The reads are identical — the
    counts come from the same ``relationships_of_many`` call the expand
    would make, so SI visibility and SSI predicate registration are
    untouched; sources with an empty adjacency produce no row, exactly as
    the real expand produces no row to aggregate.
    """
    child = op.child
    if not isinstance(child, Expand):
        return None
    rel = child.rel
    if (child.into or rel.var_length or rel.min_hops != 1 or rel.max_hops != 1
            or rel.properties or child.exclude_rel_vars
            or getattr(child, "bind_target", True)):
        return None
    rel_var = child.rel_var
    for item in op.group_items:
        expression = item.expression
        if not isinstance(expression, ast.Variable) or \
                expression.name in (rel_var, child.to_var):
            return None
    for item in op.agg_items:
        call = item.expression
        if call.name != "count" or call.star or call.distinct:
            return None
        argument = call.args[0]
        if not isinstance(argument, ast.Variable) or argument.name != rel_var:
            return None
    return _fused_expand_count_batches(op, child, ctx)


def _fused_expand_count_batches(
    op: Aggregate, child: Expand, ctx: ExecutionContext
) -> Iterator[RowBatch]:
    group_items = op.group_items
    agg_items = op.agg_items
    single_group = len(group_items) == 1
    rel_types = child.rel.types or None
    direction = child.direction
    from_var = child.from_var
    groups: Dict[object, Tuple[Row, List[int]]] = {}
    for in_batch in _run_batches(child.child, ctx):
        source_column = in_batch.data.get(from_var)
        if source_column is None:
            raise QueryExecutionError(f"unbound variable {from_var!r}")
        sources: List[Node] = []
        source_indexes: List[int] = []
        for index, source in enumerate(source_column):
            if source is None:
                continue
            if not isinstance(source, Node):
                raise QueryExecutionError(
                    f"cannot expand from {from_var!r}: not a node"
                )
            sources.append(source)
            source_indexes.append(index)
        if not sources:
            continue
        counts = ctx.tx.count_relationships_of_many(sources, direction, rel_types)
        group_columns = [
            _apply(item.expression, in_batch, ctx) for item in group_items
        ]
        for index, count in zip(source_indexes, counts):
            if not count:
                continue
            if single_group:
                key = _freeze(group_columns[0][index])
            elif group_items:
                key = tuple(_freeze(column[index]) for column in group_columns)
            else:
                key = ()
            entry = groups.get(key)
            if entry is None:
                group_row = {
                    item.alias: column[index]
                    for item, column in zip(group_items, group_columns)
                }
                entry = (group_row, [0] * len(agg_items))
                groups[key] = entry
            totals = entry[1]
            for position in range(len(totals)):
                totals[position] += count
    if not groups and not group_items:
        # Aggregation over zero rows still produces one row (count = 0).
        groups[()] = ({}, [0] * len(agg_items))
    columns = tuple(item.alias for item in group_items) + tuple(
        item.alias for item in agg_items
    )
    out_rows: List[Row] = []
    for group_row, totals in groups.values():
        out = dict(group_row)
        for item, total in zip(agg_items, totals):
            out[item.alias] = total
        out_rows.append(out)
    batch_size = ctx.batch_size
    for start in range(0, len(out_rows), batch_size):
        chunk = out_rows[start:start + batch_size]
        data = {name: [row.get(name) for row in chunk] for name in columns}
        yield RowBatch(columns, data, len(chunk))


def _aggregate_batches(op: Aggregate, ctx: ExecutionContext) -> Iterator[RowBatch]:
    fused = _fused_expand_count(op, ctx)
    if fused is not None:
        yield from fused
        return
    group_items = op.group_items
    agg_items = op.agg_items
    groups: Dict[object, Tuple[Row, List[_Accumulator]]] = {}
    single_group = len(group_items) == 1
    for batch in _run_batches(op.child, ctx):
        group_columns = [
            _apply(item.expression, batch, ctx) for item in group_items
        ]
        agg_columns = [
            None if item.expression.star
            else _apply(item.expression.args[0], batch, ctx)
            for item in agg_items
        ]
        # Bucket row indexes by group key first, then feed each accumulator
        # one slice per (batch, group) instead of one call per row.
        buckets: Dict[object, List[int]] = {}
        if single_group:
            column = group_columns[0]
            for index in range(batch.size):
                key = _freeze(column[index])
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [index]
                else:
                    bucket.append(index)
        elif group_items:
            for index in range(batch.size):
                key = tuple(_freeze(column[index]) for column in group_columns)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [index]
                else:
                    bucket.append(index)
        else:
            buckets[()] = list(range(batch.size))
        for key, indexes in buckets.items():
            entry = groups.get(key)
            if entry is None:
                first = indexes[0]
                group_row = {
                    item.alias: column[first]
                    for item, column in zip(group_items, group_columns)
                }
                accumulators = [
                    _Accumulator(item.expression, None) for item in agg_items
                ]
                entry = (group_row, accumulators)
                groups[key] = entry
            for accumulator, column in zip(entry[1], agg_columns):
                accumulator.update_slice(column, indexes)
    if not groups and not group_items:
        # Aggregation over zero rows still produces one row (count = 0 etc).
        groups[()] = (
            {}, [_Accumulator(item.expression, None) for item in agg_items]
        )
    columns = tuple(item.alias for item in group_items) + tuple(
        item.alias for item in agg_items
    )
    out_rows: List[Row] = []
    for group_row, accumulators in groups.values():
        out = dict(group_row)
        for item, accumulator in zip(agg_items, accumulators):
            out[item.alias] = accumulator.result()
        out_rows.append(out)
    batch_size = ctx.batch_size
    for start in range(0, len(out_rows), batch_size):
        chunk = out_rows[start:start + batch_size]
        data = {name: [row.get(name) for row in chunk] for name in columns}
        yield RowBatch(columns, data, len(chunk))


# -- writes --------------------------------------------------------------------


def _create_batches(op: CreateOp, ctx: ExecutionContext) -> Iterator[RowBatch]:
    for in_batch in _run_batches(op.child, ctx):
        rows = [
            _apply_create(op, row, ctx) for row in _materialise_rows(in_batch)
        ]
        yield _batch_from_rows(rows)


def _set_batches(op: SetOp, ctx: ExecutionContext) -> Iterator[RowBatch]:
    for in_batch in _run_batches(op.child, ctx):
        rows = [
            _apply_set(op, row, ctx) for row in _materialise_rows(in_batch)
        ]
        yield _batch_from_rows(rows)


def _delete_batches(op: DeleteOp, ctx: ExecutionContext) -> Iterator[RowBatch]:
    for in_batch in _run_batches(op.child, ctx):
        rows = [
            _apply_delete(op, row, ctx) for row in _materialise_rows(in_batch)
        ]
        yield _batch_from_rows(rows)


_BATCH_RUNNERS = {
    Argument: _argument_batches,
    ProduceResults: _produce_batches,
    AllNodesScan: _all_nodes_scan_batches,
    LabelScan: _label_scan_batches,
    PropertyIndexSeek: _property_seek_batches,
    Expand: _expand_batches,
    Filter: _filter_batches,
    Projection: _projection_batches,
    Distinct: _distinct_batches,
    OrderBy: _order_by_batches,
    Skip: _skip_batches,
    Limit: _limit_batches,
    Aggregate: _aggregate_batches,
    CreateOp: _create_batches,
    SetOp: _set_batches,
    DeleteOp: _delete_batches,
}
