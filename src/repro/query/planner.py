"""Cardinality-aware logical planner.

Turns a parsed :class:`~repro.query.ast.Query` into a tree of plan operators
that the pull-based executor walks.  The planner's one real decision is the
*start point* of every ``MATCH`` path: a property-index seek, a label-index
scan or an all-nodes scan, costed with the O(1) cardinality counters the
engines expose (`count_nodes_with_label` / `count_nodes_with_property` /
`count_relationships_of_type`).  Expansion then proceeds outward from the
start, and when both ends of the partially-covered path could be extended the
planner picks the end with the smaller estimated fan-out.

Every operator doubles as an ``EXPLAIN`` node: it carries its estimated row
count from planning and accumulates its actual row count during execution.
"""

from __future__ import annotations

import itertools
from typing import List, Mapping, Optional, Set, Tuple

from repro.errors import QueryExecutionError, QuerySyntaxError
from repro.graph.entity import Direction
from repro.query import ast

#: Anonymous variables get a prefix the lexer can never produce, so they can
#: never collide with a user-written identifier.
ANON_PREFIX = "#anon"

#: Hidden row key carrying pre-projection bindings for ORDER BY (see Projection).
SOURCE_ROW_KEY = "#src"

_DIRECTIONS = {
    "OUT": Direction.OUTGOING,
    "IN": Direction.INCOMING,
    "BOTH": Direction.BOTH,
}


class PlannerStatistics:
    """Cardinality estimates backed by the engines' O(1) count fast paths.

    Totals from the record stores are cached per planning pass; per-key
    counts hit the incrementally-maintained index counters directly.
    """

    def __init__(self, engine) -> None:
        self._engine = engine
        self._node_total: Optional[int] = None
        self._rel_total: Optional[int] = None

    def node_count(self) -> int:
        """Total committed nodes (cached store scan)."""
        if self._node_total is None:
            self._node_total = self._engine.store.node_count()
        return self._node_total

    def relationship_count(self) -> int:
        """Total committed relationships (cached store scan)."""
        if self._rel_total is None:
            self._rel_total = self._engine.store.relationship_count()
        return self._rel_total

    def label_count(self, label: str) -> int:
        """Nodes carrying ``label`` (O(1))."""
        return self._engine.count_nodes_with_label(label)

    def property_count(self, key: str, value: object) -> int:
        """Nodes with ``key`` = ``value`` (O(1))."""
        return self._engine.count_nodes_with_property(key, value)

    def rel_type_count(self, rel_type: str) -> int:
        """Relationships of ``rel_type`` (O(1))."""
        return self._engine.count_relationships_of_type(rel_type)

    def morsel_workers(self) -> int:
        """Worker count for morsel-parallel scans (0 disables)."""
        return getattr(self._engine, "morsel_workers", 0)

    def morsel_threshold(self) -> int:
        """Estimated-rows floor below which a scan stays single-threaded."""
        return getattr(self._engine, "morsel_threshold", 2048)


# ---------------------------------------------------------------------------
# Plan operators
# ---------------------------------------------------------------------------


class PlanOperator:
    """Base class: one node of the physical plan / EXPLAIN tree."""

    name = "Operator"

    def __init__(self, child: Optional["PlanOperator"], estimated_rows: float) -> None:
        self.child = child
        self.estimated_rows = max(0.0, estimated_rows)
        #: Filled in by the executor; ``None`` until the operator has run.
        self.actual_rows: Optional[int] = None
        #: Inclusive wall time spent pulling this operator (children
        #: included, since they are pulled from inside it); filled in only
        #: under ``PROFILE``, ``None`` otherwise.
        self.actual_time_seconds: Optional[float] = None
        #: Number of row batches this operator produced; filled in by the
        #: vectorized executor, ``None`` under the row executor.
        self.actual_batches: Optional[int] = None

    def detail(self) -> str:
        """Human-readable operator arguments for EXPLAIN output."""
        return ""

    @property
    def children(self) -> List["PlanOperator"]:
        """Child operators (leaf operators return an empty list)."""
        return [self.child] if self.child is not None else []

    def render(self, indent: int = 0) -> str:
        """The operator subtree as indented EXPLAIN text."""
        actual = "-" if self.actual_rows is None else str(self.actual_rows)
        detail = self.detail()
        suffix = f" ({detail})" if detail else ""
        estimate = (
            f"{self.estimated_rows:.1f}"
            if self.estimated_rows < 10
            else f"{self.estimated_rows:.0f}"
        )
        timing = (
            f" time={self.actual_time_seconds * 1000:.3f}ms"
            if self.actual_time_seconds is not None
            else ""
        )
        batches = ""
        if self.actual_batches:
            per_batch = (self.actual_rows or 0) / self.actual_batches
            batches = f" batches={self.actual_batches} rows/batch={per_batch:.1f}"
        line = (
            f"{' ' * indent}+{self.name}{suffix} "
            f"[est={estimate} actual={actual}{batches}{timing}]"
        )
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 2))
        return "\n".join(lines)

    def walk(self):
        """Yield the subtree in pre-order (EXPLAIN assertions use this)."""
        yield self
        for child in self.children:
            yield from child.walk()


class Argument(PlanOperator):
    """Produces exactly one empty row — the seed of every pipeline."""

    name = "Argument"

    def __init__(self) -> None:
        super().__init__(None, 1)


class AllNodesScan(PlanOperator):
    """Every visible node, bound to ``variable`` (per input row)."""

    name = "AllNodesScan"

    def __init__(self, child: PlanOperator, variable: str, pattern: ast.NodePattern,
                 estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.variable = variable
        self.pattern = pattern
        #: Set by the planner when the scan should be split into morsels
        #: across the worker pool (batch executor only).
        self.parallel = False

    def detail(self) -> str:
        return self.variable + (" morsel" if self.parallel else "")


class LabelScan(PlanOperator):
    """Label-index scan: nodes carrying ``label``, bound to ``variable``."""

    name = "LabelScan"

    def __init__(self, child: PlanOperator, variable: str, label: str,
                 pattern: ast.NodePattern, estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.variable = variable
        self.label = label
        self.pattern = pattern
        #: Set by the planner when the scan should be split into morsels
        #: across the worker pool (batch executor only).
        self.parallel = False

    def detail(self) -> str:
        return f"{self.variable}:{self.label}" + (" morsel" if self.parallel else "")


class PropertyIndexSeek(PlanOperator):
    """Property-index seek: nodes with ``key`` = ``value`` (plus label filter)."""

    name = "PropertyIndexSeek"

    def __init__(self, child: PlanOperator, variable: str, key: str,
                 value: ast.Expression, label: Optional[str],
                 pattern: ast.NodePattern, estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.variable = variable
        self.key = key
        self.value = value
        self.label = label
        self.pattern = pattern

    def detail(self) -> str:
        label = f":{self.label}" if self.label else ""
        return f"{self.variable}{label} {self.key} = {ast.render_expression(self.value)}"


class Expand(PlanOperator):
    """One pattern hop: expand ``from_var`` along a relationship pattern.

    ``into`` marks the case where the far end is already bound (closing a
    cycle or joining two patterns), which filters instead of binding.  The
    runtime goes through :mod:`repro.api.traversal`, so a whole multi-hop
    match observes one snapshot.
    """

    name = "Expand"

    def __init__(self, child: PlanOperator, from_var: str, rel: ast.RelPattern,
                 rel_var: str, to_var: str, to_pattern: ast.NodePattern, *,
                 into: bool, exclude_rel_vars: Tuple[str, ...],
                 estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.from_var = from_var
        self.rel = rel
        self.rel_var = rel_var
        self.to_var = to_var
        self.to_pattern = to_pattern
        self.into = into
        self.exclude_rel_vars = exclude_rel_vars
        #: Whether the far-end node must be materialised.  The planner clears
        #: this for terminal anonymous targets with no label/property checks
        #: (``-[r:KNOWS]-()``): the batch executor then skips the neighbour
        #: node reads entirely — the result cannot depend on them.
        self.bind_target = True
        if rel.var_length:
            self.name = "VarLengthExpandInto" if into else "VarLengthExpand"
        else:
            self.name = "ExpandInto" if into else "Expand"

    @property
    def direction(self) -> Direction:
        """The hop direction as the traversal enum."""
        return _DIRECTIONS[self.rel.direction]

    def detail(self) -> str:
        types = "|".join(self.rel.types)
        type_part = f":{types}" if types else ""
        hops = ""
        if self.rel.var_length:
            upper = "" if self.rel.max_hops is None else str(self.rel.max_hops)
            hops = f"*{self.rel.min_hops}..{upper}"
        arrow_left = "<-" if self.rel.direction == "IN" else "-"
        arrow_right = "->" if self.rel.direction == "OUT" else "-"
        unbound = "" if self.bind_target or self.into else " unbound-target"
        return (
            f"({self.from_var}){arrow_left}[{type_part}{hops}]{arrow_right}"
            f"({self.to_var}){unbound}"
        )


class Filter(PlanOperator):
    """Keep rows whose predicate evaluates to true."""

    name = "Filter"

    def __init__(self, child: PlanOperator, predicate: ast.Expression,
                 estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.predicate = predicate

    def detail(self) -> str:
        return ast.render_expression(self.predicate)


class Projection(PlanOperator):
    """Evaluate projection items into a fresh row of alias bindings."""

    name = "Projection"

    def __init__(self, child: PlanOperator, items: Tuple[ast.ReturnItem, ...],
                 *, keep_source: bool, estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.items = items
        self.keep_source = keep_source

    def detail(self) -> str:
        return ", ".join(item.alias for item in self.items)


class Aggregate(PlanOperator):
    """Hash aggregation: group by the non-aggregate items."""

    name = "Aggregate"

    def __init__(self, child: PlanOperator, group_items: Tuple[ast.ReturnItem, ...],
                 agg_items: Tuple[ast.ReturnItem, ...], estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.group_items = group_items
        self.agg_items = agg_items

    def detail(self) -> str:
        groups = ", ".join(item.alias for item in self.group_items) or "<all>"
        aggs = ", ".join(item.alias for item in self.agg_items)
        return f"group by {groups}: {aggs}"


class Distinct(PlanOperator):
    """Drop duplicate projected rows."""

    name = "Distinct"

    def __init__(self, child: PlanOperator, columns: Tuple[str, ...],
                 estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.columns = columns

    def detail(self) -> str:
        return ", ".join(self.columns)


class OrderBy(PlanOperator):
    """Sort rows by the order keys (materialises its input)."""

    name = "OrderBy"

    def __init__(self, child: PlanOperator, order_items: Tuple[ast.OrderItem, ...],
                 estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.order_items = order_items

    def detail(self) -> str:
        return ", ".join(
            ast.render_expression(item.expression) + ("" if item.ascending else " DESC")
            for item in self.order_items
        )


class Skip(PlanOperator):
    """Drop the first N rows."""

    name = "Skip"

    def __init__(self, child: PlanOperator, count: ast.Expression,
                 estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.count = count

    def detail(self) -> str:
        return ast.render_expression(self.count)


class Limit(PlanOperator):
    """Pass at most N rows (stops pulling from its child after that)."""

    name = "Limit"

    def __init__(self, child: PlanOperator, count: ast.Expression,
                 estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.count = count

    def detail(self) -> str:
        return ast.render_expression(self.count)


class CreateOp(PlanOperator):
    """Create the clause's patterns once per input row."""

    name = "Create"

    def __init__(self, child: PlanOperator, clause: ast.CreateClause,
                 estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.clause = clause

    def detail(self) -> str:
        nodes = sum(len(p.nodes) for p in self.clause.patterns)
        rels = sum(len(p.rels) for p in self.clause.patterns)
        return f"{nodes} node(s), {rels} relationship(s)"


class SetOp(PlanOperator):
    """Apply SET items once per input row."""

    name = "SetProperties"

    def __init__(self, child: PlanOperator, clause: ast.SetClause,
                 estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.clause = clause

    def detail(self) -> str:
        parts = []
        for item in self.clause.items:
            if isinstance(item, ast.SetProperty):
                parts.append(f"{item.variable}.{item.key}")
            else:
                parts.append(item.variable + ":" + ":".join(item.labels))
        return ", ".join(parts)


class DeleteOp(PlanOperator):
    """Delete the named entities once per input row."""

    name = "Delete"

    def __init__(self, child: PlanOperator, clause: ast.DeleteClause,
                 estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.clause = clause
        if clause.detach:
            self.name = "DetachDelete"

    def detail(self) -> str:
        return ", ".join(self.clause.variables)


class ProduceResults(PlanOperator):
    """Plan root: strip rows down to the result columns."""

    name = "ProduceResults"

    def __init__(self, child: PlanOperator, columns: Tuple[str, ...],
                 estimated_rows: float) -> None:
        super().__init__(child, estimated_rows)
        self.columns = columns

    def detail(self) -> str:
        return ", ".join(self.columns)


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


class Plan:
    """A planned query: the operator tree plus its result columns."""

    def __init__(self, query: ast.Query, root: ProduceResults) -> None:
        self.query = query
        self.root = root
        self.columns = list(root.columns)

    def render(self) -> str:
        """The whole plan as indented EXPLAIN text."""
        return self.root.render()

    def operator_names(self) -> List[str]:
        """Pre-order operator names (test/assertion helper)."""
        return [op.name for op in self.root.walk()]


def plan_query(query: ast.Query, statistics: PlannerStatistics,
               parameters: Mapping[str, object]) -> Plan:
    """Plan a parsed query against the given cardinality statistics."""
    planner = _Planner(statistics, parameters)
    return planner.plan(query)


class _Planner:
    def __init__(self, statistics: PlannerStatistics,
                 parameters: Mapping[str, object]) -> None:
        self.stats = statistics
        self.parameters = parameters
        self._anon_counter = itertools.count()

    # -- entry ------------------------------------------------------------------

    def plan(self, query: ast.Query) -> Plan:
        op: PlanOperator = Argument()
        bound: Set[str] = set()
        columns: Tuple[str, ...] = ()
        for clause in query.clauses:
            if isinstance(clause, ast.MatchClause):
                op = self._plan_match(op, clause, bound)
            elif isinstance(clause, ast.CreateClause):
                op = self._plan_create(op, clause, bound)
            elif isinstance(clause, ast.SetClause):
                op = self._plan_set(op, clause, bound)
            elif isinstance(clause, ast.DeleteClause):
                op = self._plan_delete(op, clause, bound)
            elif isinstance(clause, ast.ProjectionClause):
                op = self._plan_projection(op, clause, bound)
                bound = {item.alias for item in clause.items}
                if clause.is_return:
                    columns = tuple(item.alias for item in clause.items)
        root = ProduceResults(op, columns, op.estimated_rows)
        self._prune_unbound_targets(root)
        return Plan(query, root)

    @staticmethod
    def _prune_unbound_targets(root: PlanOperator) -> None:
        """Clear ``bind_target`` on hops whose far end nobody can observe.

        An anonymous target (``-[r:KNOWS]-()``) is only reachable by later
        hops of the same MATCH — user expressions cannot name ``#anon``
        variables.  A terminal anonymous node with no label or property
        checks therefore contributes nothing to the result, and the batch
        executor can skip materialising the neighbour nodes.
        """
        expands = [op for op in root.walk() if isinstance(op, Expand)]
        referenced: Set[str] = set()
        for op in expands:
            referenced.add(op.from_var)
            if op.into:
                referenced.add(op.to_var)
        for op in expands:
            pattern = op.to_pattern
            if (
                not op.into
                and not op.rel.var_length
                and op.to_var.startswith(ANON_PREFIX)
                and op.to_var not in referenced
                and not pattern.labels
                and not pattern.properties
            ):
                op.bind_target = False

    # -- MATCH ------------------------------------------------------------------

    def _plan_match(self, op: PlanOperator, clause: ast.MatchClause,
                    bound: Set[str]) -> PlanOperator:
        # Cypher's relationship isomorphism: no relationship may be matched
        # twice within one MATCH clause, anonymous patterns included.  Every
        # hop therefore gets a bound variable (anonymous ones get a name the
        # lexer cannot produce) and later hops exclude all earlier ones.
        seen_rel_vars: List[str] = []
        for pattern in clause.patterns:
            op = self._plan_path(op, pattern, bound, seen_rel_vars)
        if clause.where is not None:
            self._check_expression_bound(clause.where, bound)
            op = Filter(op, clause.where, op.estimated_rows * 0.5)
        return op

    def _plan_path(self, op: PlanOperator, pattern: ast.PathPattern,
                   bound: Set[str], seen_rel_vars: List[str]) -> PlanOperator:
        node_vars = [
            node.variable or f"{ANON_PREFIX}{next(self._anon_counter)}"
            for node in pattern.nodes
        ]
        rel_vars = [
            rel.variable or f"{ANON_PREFIX}{next(self._anon_counter)}"
            for rel in pattern.rels
        ]
        for index, rel_var in enumerate(rel_vars):
            if rel_var in bound or rel_var in rel_vars[:index]:
                raise QuerySyntaxError(
                    f"relationship variable {rel_var!r} is already bound"
                )

        start = self._choose_start(pattern, node_vars, bound)
        op = self._emit_start(op, pattern.nodes[start], node_vars[start], bound)
        bound.add(node_vars[start])

        # Expand outward from the covered interval [low, high], choosing the
        # cheaper (smaller estimated fan-out) end when both are available.
        low = high = start
        while low > 0 or high < len(pattern.nodes) - 1:
            left_fanout = (
                self._fanout(pattern.rels[low - 1]) if low > 0 else None
            )
            right_fanout = (
                self._fanout(pattern.rels[high]) if high < len(pattern.nodes) - 1 else None
            )
            go_left = right_fanout is None or (
                left_fanout is not None and left_fanout <= right_fanout
            )
            if go_left:
                # The pattern reads nodes[low-1] -rel- nodes[low]; expanding
                # right-to-left walks the relationship backwards.
                rel = _reverse_rel(pattern.rels[low - 1])
                rel_var = rel_vars[low - 1]
                from_var, to_index = node_vars[low], low - 1
                low -= 1
            else:
                rel = pattern.rels[high]
                rel_var = rel_vars[high]
                from_var, to_index = node_vars[high], high + 1
                high += 1
            to_var = node_vars[to_index]
            to_pattern = pattern.nodes[to_index]
            into = to_var in bound
            fanout = self._fanout(rel)
            estimated = op.estimated_rows * (
                1.0 / max(1, self.stats.node_count()) if into else fanout
            )
            op = Expand(
                op, from_var, rel, rel_var, to_var, to_pattern,
                into=into, exclude_rel_vars=tuple(seen_rel_vars),
                estimated_rows=max(estimated, 0.1),
            )
            seen_rel_vars.append(rel_var)
            bound.add(rel_var)
            bound.add(to_var)
        return op

    def _choose_start(self, pattern: ast.PathPattern, node_vars: List[str],
                      bound: Set[str]) -> int:
        """Index of the cheapest node pattern to start matching from."""
        best_index, best_cost = 0, float("inf")
        for index, node in enumerate(pattern.nodes):
            if node_vars[index] in bound:
                # Already bound by an earlier clause/pattern: free.
                cost = 0.0
            else:
                cost = self._access_cost(node)[0]
            if cost < best_cost:
                best_index, best_cost = index, cost
        return best_index

    def _access_cost(self, node: ast.NodePattern) -> Tuple[float, str, object]:
        """(cost, access kind, argument) for the cheapest access path."""
        label_costs = [
            (self.stats.label_count(label), label) for label in node.labels
        ]
        best_label = min(label_costs) if label_costs else None
        seekable = self._seekable_properties(node)
        best_seek = None
        for key, value_expr, value in seekable:
            count = self.stats.property_count(key, value)
            if best_seek is None or count < best_seek[0]:
                best_seek = (count, key, value_expr)
        # Each access path is costed by the rows *it* materialises; when the
        # label set is smaller than the property entry, scanning the label
        # and filtering the property residually is the cheaper plan.
        if best_seek is not None and (
            best_label is None or best_seek[0] <= best_label[0]
        ):
            return float(best_seek[0]), "seek", best_seek
        if best_label is not None:
            return float(best_label[0]), "label", best_label[1]
        return float(max(1, self.stats.node_count())), "all", None

    def _seekable_properties(self, node: ast.NodePattern):
        """Pattern properties whose value is known at plan time (index-usable)."""
        result = []
        for key, expression in node.properties:
            if isinstance(expression, ast.Literal):
                result.append((key, expression, expression.value))
            elif isinstance(expression, ast.Parameter):
                if expression.name in self.parameters:
                    result.append((key, expression, self.parameters[expression.name]))
        return result

    def _emit_start(self, op: PlanOperator, node: ast.NodePattern, variable: str,
                    bound: Set[str]) -> PlanOperator:
        if variable in bound:
            # Re-matching a bound variable: only re-check the pattern's
            # labels/properties (a Filter keeps the plan honest in EXPLAIN).
            if node.labels or node.properties:
                predicate = _pattern_predicate(variable, node)
                return Filter(op, predicate, op.estimated_rows * 0.5)
            return op
        cost, kind, argument = self._access_cost(node)
        estimated = op.estimated_rows * max(cost, 0.1)
        if kind == "seek":
            _count, key, value_expr = argument
            label = node.labels[0] if node.labels else None
            return PropertyIndexSeek(op, variable, key, value_expr, label, node, estimated)
        if kind == "label":
            scan: PlanOperator = LabelScan(op, variable, argument, node, estimated)
        else:
            scan = AllNodesScan(op, variable, node, estimated)
        # Morsel-parallel leaf scans: worth splitting only when the engine
        # has a worker pool and the cardinality stats promise enough rows to
        # amortise the dispatch.  Surfaced in EXPLAIN via the scan detail.
        scan.parallel = (
            self.stats.morsel_workers() > 1
            and estimated >= self.stats.morsel_threshold()
        )
        return scan

    def _fanout(self, rel: ast.RelPattern) -> float:
        """Estimated neighbours per node for one hop of this pattern."""
        nodes = max(1, self.stats.node_count())
        if rel.types:
            edges = sum(self.stats.rel_type_count(t) for t in rel.types)
        else:
            edges = self.stats.relationship_count()
        per_node = edges / nodes
        if rel.direction == "BOTH":
            per_node *= 2.0
        if rel.var_length:
            # A geometric guess over the hop range, capped so unbounded
            # patterns do not produce infinite estimates.
            upper = rel.max_hops if rel.max_hops is not None else rel.min_hops + 2
            upper = min(upper, rel.min_hops + 4)
            total = 0.0
            for hops in range(rel.min_hops, upper + 1):
                total += per_node ** hops if per_node > 0 else 0.0
            return max(total, 0.1)
        return max(per_node, 0.1)

    # -- writes ----------------------------------------------------------------

    def _plan_create(self, op: PlanOperator, clause: ast.CreateClause,
                     bound: Set[str]) -> PlanOperator:
        for pattern in clause.patterns:
            for node, rel in zip(pattern.nodes, list(pattern.rels) + [None]):
                if node.variable is not None and node.variable not in bound:
                    bound.add(node.variable)
                elif node.variable is not None and (node.labels or node.properties):
                    raise QuerySyntaxError(
                        f"variable {node.variable!r} is already bound; a bound "
                        "node in CREATE cannot restate labels or properties"
                    )
                if rel is not None and rel.variable is not None:
                    bound.add(rel.variable)
        return CreateOp(op, clause, op.estimated_rows)

    def _plan_set(self, op: PlanOperator, clause: ast.SetClause,
                  bound: Set[str]) -> PlanOperator:
        for item in clause.items:
            if item.variable not in bound:
                raise QuerySyntaxError(f"SET references unbound variable {item.variable!r}")
            if isinstance(item, ast.SetProperty):
                self._check_expression_bound(item.value, bound)
        return SetOp(op, clause, op.estimated_rows)

    def _plan_delete(self, op: PlanOperator, clause: ast.DeleteClause,
                     bound: Set[str]) -> PlanOperator:
        for variable in clause.variables:
            if variable not in bound:
                raise QuerySyntaxError(
                    f"DELETE references unbound variable {variable!r}"
                )
        return DeleteOp(op, clause, op.estimated_rows)

    # -- projections ------------------------------------------------------------

    def _plan_projection(self, op: PlanOperator, clause: ast.ProjectionClause,
                         bound: Set[str]) -> PlanOperator:
        for item in clause.items:
            self._check_expression_bound(item.expression, bound)
        aliases = tuple(item.alias for item in clause.items)
        agg_items = tuple(
            item for item in clause.items if ast.contains_aggregate(item.expression)
        )
        for item in agg_items:
            if not (
                isinstance(item.expression, ast.FunctionCall)
                and item.expression.name in ast.AGGREGATE_FUNCTIONS
            ):
                raise QuerySyntaxError(
                    "an aggregating item must be a single aggregate call "
                    f"(got {ast.render_expression(item.expression)!r})"
                )
        order_by = clause.order_by
        if agg_items:
            group_items = tuple(
                item for item in clause.items if item not in agg_items
            )
            estimated = max(1.0, op.estimated_rows ** 0.5) if group_items else 1.0
            op = Aggregate(op, group_items, agg_items, estimated)
            order_by = _rewrite_order_for_aggregate(order_by, clause.items)
        else:
            for order_item in order_by:
                if ast.contains_aggregate(order_item.expression):
                    raise QuerySyntaxError(
                        "ORDER BY can only use an aggregate when the "
                        "RETURN/WITH items aggregate too"
                    )
            op = Projection(
                op, clause.items,
                keep_source=bool(clause.order_by),
                estimated_rows=op.estimated_rows,
            )
            if clause.distinct:
                op = Distinct(op, aliases, max(1.0, op.estimated_rows * 0.8))
        if order_by:
            op = OrderBy(op, order_by, op.estimated_rows)
        if clause.skip is not None:
            skip_guess = self._static_int(clause.skip)
            estimated = (
                max(0.0, op.estimated_rows - skip_guess)
                if skip_guess is not None
                else max(0.0, op.estimated_rows - 1)
            )
            op = Skip(op, clause.skip, estimated)
        if clause.limit is not None:
            limit_guess = self._static_int(clause.limit)
            estimated = (
                min(op.estimated_rows, limit_guess)
                if limit_guess is not None
                else op.estimated_rows
            )
            op = Limit(op, clause.limit, estimated)
        if clause.where is not None:
            aliased: Set[str] = set(aliases)
            self._check_expression_bound(clause.where, aliased)
            op = Filter(op, clause.where, op.estimated_rows * 0.5)
        return op

    # -- helpers ----------------------------------------------------------------

    def _static_int(self, expression: ast.Expression) -> Optional[int]:
        if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
            return expression.value
        if (
            isinstance(expression, ast.Parameter)
            and isinstance(self.parameters.get(expression.name), int)
        ):
            return self.parameters[expression.name]
        return None

    def _check_expression_bound(self, expression: ast.Expression,
                                bound: Set[str]) -> None:
        for name in _free_variables(expression):
            if name not in bound:
                raise QuerySyntaxError(f"unbound variable {name!r}")


def _rewrite_order_for_aggregate(
    order_items: Tuple[ast.OrderItem, ...],
    items: Tuple[ast.ReturnItem, ...],
) -> Tuple[ast.OrderItem, ...]:
    """Map ORDER BY expressions onto the Aggregate operator's output columns.

    After aggregation only the projected aliases exist, so ``ORDER BY
    count(*)`` (the canonical top-N idiom) must be rewritten to the alias of
    the matching projection item; an aggregate that was not projected has no
    column to sort by and is rejected up front.
    """
    by_expression = {item.expression: item.alias for item in items}
    rewritten = []
    for order_item in order_items:
        expression = order_item.expression
        alias = by_expression.get(expression)
        if alias is not None:
            expression = ast.Variable(alias)
        elif ast.contains_aggregate(expression):
            raise QuerySyntaxError(
                "ORDER BY can only use an aggregate that also appears as a "
                f"RETURN/WITH item (got {ast.render_expression(expression)!r})"
            )
        rewritten.append(
            ast.OrderItem(expression=expression, ascending=order_item.ascending)
        )
    return tuple(rewritten)


def _free_variables(expression: ast.Expression) -> Set[str]:
    result: Set[str] = set()
    stack: List[ast.Expression] = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Variable):
            result.add(node.name)
        elif isinstance(node, ast.PropertyAccess):
            stack.append(node.entity)
        elif isinstance(node, (ast.Comparison, ast.Arithmetic)):
            stack.extend((node.left, node.right))
        elif isinstance(node, ast.BooleanOp):
            stack.extend(node.operands)
        elif isinstance(node, (ast.Not, ast.Negate, ast.IsNull)):
            stack.append(node.operand)
        elif isinstance(node, ast.ListLiteral):
            stack.extend(node.items)
        elif isinstance(node, ast.FunctionCall):
            stack.extend(node.args)
    return result


def _reverse_rel(rel: ast.RelPattern) -> ast.RelPattern:
    """The same hop walked in the opposite direction."""
    direction = {"OUT": "IN", "IN": "OUT", "BOTH": "BOTH"}[rel.direction]
    return ast.RelPattern(
        variable=rel.variable,
        types=rel.types,
        properties=rel.properties,
        direction=direction,
        min_hops=rel.min_hops,
        max_hops=rel.max_hops,
        var_length=rel.var_length,
    )


def _pattern_predicate(variable: str, node: ast.NodePattern) -> ast.Expression:
    """Labels + property map of a re-matched bound node as a WHERE predicate."""
    parts: List[ast.Expression] = []
    for label in node.labels:
        parts.append(
            ast.Comparison(
                op="IN",
                left=ast.Literal(label),
                right=ast.FunctionCall(name="labels", args=(ast.Variable(variable),)),
            )
        )
    for key, expression in node.properties:
        parts.append(
            ast.Comparison(
                op="=",
                left=ast.PropertyAccess(entity=ast.Variable(variable), key=key),
                right=expression,
            )
        )
    if len(parts) == 1:
        return parts[0]
    return ast.BooleanOp(op="AND", operands=tuple(parts))
