"""Query-level caches: parsed ASTs and planned operator trees.

Two caches, both LRU, both per-database (each engine owns a
:class:`QueryCaches` bundle rather than sharing process-global state):

* :class:`ParseCache` — query text → immutable AST.  Parsing is pure, so the
  only policy is size (``GraphDatabase(query_cache_size=...)``) and the only
  interesting output is the hit/miss counters surfaced through
  ``statistics()["query_cache"]``.

* :class:`PlanCache` — ``(query text, cardinality epoch, provided parameter
  names)`` → planned operator tree.  Plans are costed against the engine's
  cardinality counters, so they are keyed on the engine's
  :class:`~repro.stats.CardinalityEpoch`: when the statistics drift enough
  for the epoch to bump, every cached plan misses on its next lookup and is
  re-planned against fresh counts.  Parameter *names* are part of the key
  (a plan seeks on ``$p`` only if ``p`` was provided at plan time); parameter
  *values* are not — like Cypher's plan cache, one plan per query shape is
  reused across values, trading per-value optimality for never planning a
  hot query twice.

Plan operator trees are shared between concurrent executions.  That is safe
because executing reads the tree but mutates only the per-operator
``actual_rows`` counters (a benign race that PROFILE avoids by bypassing the
cache entirely — see :func:`repro.query.execute`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

#: Default capacity of both query caches.
DEFAULT_QUERY_CACHE_SIZE = 512


class _LruCache:
    """A small thread-safe LRU map with hit/miss/eviction counters."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ValueError("cache size must be >= 0 (0 disables the cache)")
        self._maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def maxsize(self) -> int:
        """Configured capacity (0 = disabled)."""
        return self._maxsize

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key``, or ``None`` (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key`` (no-op when the cache is disabled)."""
        if self._maxsize == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counters plus current size."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self._maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class ParseCache(_LruCache):
    """Query text → parsed AST (ASTs are immutable and freely shareable)."""

    def parse(self, text: str):
        """Parse ``text`` through the cache."""
        from repro.query.parser import parse

        query = self.get(text)
        if query is None:
            query = parse(text)
            self.put(text, query)
        return query


class PlanCache(_LruCache):
    """(query text, cardinality epoch, parameter names) → planned tree."""

    @staticmethod
    def key(text: str, epoch: int, parameters: Dict[str, object]) -> Hashable:
        """The cache key for one execution's (text, epoch, param names)."""
        return (text, epoch, frozenset(parameters))


class QueryCaches:
    """The per-database bundle: one parse cache, one plan cache."""

    def __init__(self, size: int = DEFAULT_QUERY_CACHE_SIZE) -> None:
        self.parse = ParseCache(size)
        self.plan = PlanCache(size)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Both caches' counters (the ``statistics()["query_cache"]`` body)."""
        return {"parse": self.parse.stats(), "plan": self.plan.stats()}
