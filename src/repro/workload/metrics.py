"""Latency and throughput aggregation for workload runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.registry import Histogram
from repro.workload.anomaly import AnomalyCounters


class LatencyRecorder:
    """Thread-safe collection of per-operation latencies (seconds).

    A thin facade over :class:`repro.obs.registry.Histogram` in
    exact-sample mode: benchmarks keep every observation, so percentiles
    are linearly-interpolated order statistics (the same definition the
    metrics registry uses) rather than bucket approximations.
    """

    def __init__(self) -> None:
        self._histogram = Histogram(track_samples=True)

    def record(self, latency_seconds: float) -> None:
        """Add one latency sample."""
        self._histogram.observe(latency_seconds)

    def extend(self, samples: List[float]) -> None:
        """Add a batch of latency samples."""
        observe = self._histogram.observe
        for sample in samples:
            observe(sample)

    def count(self) -> int:
        """Number of recorded samples."""
        return self._histogram.count()

    def samples(self) -> List[float]:
        """A copy of every recorded sample."""
        return self._histogram.samples()

    def percentile(self, fraction: float) -> float:
        """Latency at the given fraction (0..1); 0.0 with no samples."""
        return self._histogram.percentile(fraction)

    def mean(self) -> float:
        """Mean latency; 0.0 with no samples."""
        return self._histogram.mean()

    def summary(self) -> Dict[str, float]:
        """Mean and common percentiles in one dictionary."""
        return self._histogram.summary()


@dataclass
class WorkloadResult:
    """Aggregate outcome of one workload run."""

    workers: int = 0
    operations: int = 0
    committed: int = 0
    aborted: int = 0
    conflicts: int = 0
    deadlocks: int = 0
    retries: int = 0
    duration_seconds: float = 0.0
    anomalies: AnomalyCounters = field(default_factory=AnomalyCounters)
    latencies: LatencyRecorder = field(default_factory=LatencyRecorder)
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Committed transactions per second."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.committed / self.duration_seconds

    @property
    def abort_rate(self) -> float:
        """Fraction of attempted transactions that aborted."""
        attempts = self.committed + self.aborted
        return self.aborted / attempts if attempts else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary used by the benchmark harness to print result rows."""
        result: Dict[str, object] = {
            "workers": self.workers,
            "operations": self.operations,
            "committed": self.committed,
            "aborted": self.aborted,
            "conflicts": self.conflicts,
            "deadlocks": self.deadlocks,
            "retries": self.retries,
            "duration_seconds": round(self.duration_seconds, 4),
            "throughput_tps": round(self.throughput, 2),
            "abort_rate": round(self.abort_rate, 4),
        }
        result.update({f"anomaly_{key}": value for key, value in self.anomalies.as_dict().items()})
        result.update({f"latency_{key}": round(value, 6) for key, value in self.latencies.summary().items()})
        result.update(self.extra)
        return result

    def merge_worker(
        self,
        *,
        operations: int,
        committed: int,
        aborted: int,
        conflicts: int = 0,
        deadlocks: int = 0,
        retries: int = 0,
        latencies: Optional[List[float]] = None,
        anomalies: Optional[AnomalyCounters] = None,
    ) -> None:
        """Fold one worker's counters into the aggregate (called per worker)."""
        self.operations += operations
        self.committed += committed
        self.aborted += aborted
        self.conflicts += conflicts
        self.deadlocks += deadlocks
        self.retries += retries
        if latencies:
            self.latencies.extend(latencies)
        if anomalies is not None:
            self.anomalies.merge(anomalies)
