"""Reusable transaction bodies for workloads.

Each function performs one complete unit of application work against an open
transaction.  The concurrent runner (and the benchmarks) compose these into
operation mixes; keeping them here means the read-committed and snapshot
runs execute byte-for-byte identical application logic.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.api.transaction import Transaction
from repro.graph.entity import Direction


def read_node_properties(tx: Transaction, node_id: int) -> Dict[str, object]:
    """Point read: return the properties of one node (empty dict if invisible)."""
    node = tx.try_get_node(node_id)
    return dict(node.properties) if node is not None else {}


def update_node_property(
    tx: Transaction, node_id: int, key: str, rng: random.Random
) -> bool:
    """Read-modify-write one integer property; returns False if the node is gone."""
    node = tx.try_get_node(node_id)
    if node is None:
        return False
    current = int(node.get(key, 0))
    tx.set_node_property(node_id, key, current + rng.randint(1, 5))
    return True


def transfer_between_accounts(
    tx: Transaction, from_id: int, to_id: int, amount: int
) -> bool:
    """Move ``amount`` between two account nodes; False if either is missing."""
    source = tx.try_get_node(from_id)
    target = tx.try_get_node(to_id)
    if source is None or target is None:
        return False
    tx.set_node_property(from_id, "balance", int(source.get("balance", 0)) - amount)
    tx.set_node_property(to_id, "balance", int(target.get("balance", 0)) + amount)
    return True


def scan_label(tx: Transaction, label: str) -> List[int]:
    """Predicate scan: ids of every visible node with ``label``."""
    return [node.id for node in tx.find_nodes(label=label)]


def scan_property(tx: Transaction, key: str, value: object) -> List[int]:
    """Predicate scan: ids of every visible node with ``key`` = ``value``."""
    return [node.id for node in tx.find_nodes(key=key, value=value)]


def insert_labelled_node(
    tx: Transaction, label: str, rng: random.Random, extra_labels: Sequence[str] = ()
) -> int:
    """Insert a node carrying ``label`` (used to provoke phantoms); returns its id."""
    node = tx.create_node(
        [label, *extra_labels],
        {"payload": rng.randint(0, 1_000_000), "flag": rng.random() < 0.5},
    )
    return node.id

def delete_random_node(
    tx: Transaction, candidates: Sequence[int], rng: random.Random
) -> Optional[int]:
    """Detach-delete one node picked from ``candidates``; returns its id or None."""
    if not candidates:
        return None
    node_id = rng.choice(list(candidates))
    if tx.try_get_node(node_id) is None:
        return None
    tx.delete_node(node_id, detach=True)
    return node_id


def add_friendship(
    tx: Transaction, people: Sequence[int], rng: random.Random
) -> Optional[int]:
    """Create one ``KNOWS`` relationship between two random people."""
    if len(people) < 2:
        return None
    left, right = rng.sample(list(people), 2)
    if tx.try_get_node(left) is None or tx.try_get_node(right) is None:
        return None
    return tx.create_relationship(left, right, "KNOWS", {"since": rng.randint(1990, 2026)}).id


def traverse_neighbourhood(
    tx: Transaction, start_id: int, *, depth: int = 2, rel_types: Optional[Sequence[str]] = None
) -> int:
    """Breadth-first neighbourhood walk; returns the number of nodes visited."""
    if tx.try_get_node(start_id) is None:
        return 0
    frontier = [start_id]
    visited = {start_id}
    for _level in range(depth):
        next_frontier: List[int] = []
        for node_id in frontier:
            if tx.try_get_node(node_id) is None:
                continue
            for relationship in tx.relationships_of(node_id, Direction.BOTH, rel_types):
                other = relationship.other_node_id(node_id)
                if other not in visited:
                    visited.add(other)
                    next_frontier.append(other)
        frontier = next_frontier
    return len(visited)
