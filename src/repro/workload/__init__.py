"""Workload generation and measurement.

The paper has no evaluation section of its own, so the experiments in
EXPERIMENTS.md are driven by the utilities here:

* :mod:`repro.workload.generators` — deterministic graph generators (social
  network, chain, grid, account graph),
* :mod:`repro.workload.operations` — reusable transaction bodies (point
  reads, property updates, two-step traversals, label scans, transfers),
* :mod:`repro.workload.anomaly` — in-transaction checkers for unrepeatable
  reads, phantom reads, lost updates and write skew,
* :mod:`repro.workload.metrics` — latency/throughput aggregation, and
* :mod:`repro.workload.runner` — a multi-threaded workload runner that runs
  the same workload against either isolation level.
"""

from repro.workload.anomaly import AnomalyCounters
from repro.workload.generators import (
    build_account_graph,
    build_chain_graph,
    build_grid_graph,
    build_social_graph,
)
from repro.workload.metrics import LatencyRecorder, WorkloadResult
from repro.workload.runner import ConcurrentWorkloadRunner, WorkerOutcome

__all__ = [
    "AnomalyCounters",
    "ConcurrentWorkloadRunner",
    "LatencyRecorder",
    "WorkerOutcome",
    "WorkloadResult",
    "build_account_graph",
    "build_chain_graph",
    "build_grid_graph",
    "build_social_graph",
]
