"""Workload generation and measurement.

The paper has no evaluation section of its own, so the experiments in
EXPERIMENTS.md are driven by the utilities here:

* :mod:`repro.workload.generators` — deterministic graph generators (social
  network, chain, grid, account graph),
* :mod:`repro.workload.operations` — reusable transaction bodies (point
  reads, property updates, two-step traversals, label scans, transfers),
* :mod:`repro.workload.anomaly` — in-transaction checkers for unrepeatable
  reads, phantom reads, lost updates and write skew,
* :mod:`repro.workload.metrics` — latency/throughput aggregation,
* :mod:`repro.workload.runner` — a multi-threaded workload runner that runs
  the same workload against either isolation level, and
* :mod:`repro.workload.queries` — a weighted Cypher-subset query mix
  (point lookups, scans, traversals, aggregates) for the declarative query
  subsystem, driven by ``bench_e10``.
"""

from repro.workload.anomaly import AnomalyCounters
from repro.workload.generators import (
    build_account_graph,
    build_chain_graph,
    build_grid_graph,
    build_social_graph,
)
from repro.workload.metrics import LatencyRecorder, WorkloadResult
from repro.workload.queries import (
    READ_TEMPLATES,
    WRITE_TEMPLATES,
    QueryMix,
    QueryTemplate,
    person_names_of,
    query_mix_work_fn,
)
from repro.workload.runner import (
    ConcurrentWorkloadRunner,
    WorkerOutcome,
    run_mixed_workload,
    transactional,
)

__all__ = [
    "AnomalyCounters",
    "ConcurrentWorkloadRunner",
    "LatencyRecorder",
    "QueryMix",
    "QueryTemplate",
    "READ_TEMPLATES",
    "WRITE_TEMPLATES",
    "WorkerOutcome",
    "WorkloadResult",
    "build_account_graph",
    "build_chain_graph",
    "build_grid_graph",
    "build_social_graph",
    "person_names_of",
    "query_mix_work_fn",
    "run_mixed_workload",
    "transactional",
]
