"""Query-mix workload generation for the declarative query subsystem.

A :class:`QueryMix` samples parameterised Cypher-subset queries over a graph
built by :func:`repro.workload.generators.build_social_graph`, weighted the
way a read-mostly social workload looks: cheap indexed point reads dominate,
with a tail of scans, traversals and aggregates.  The mix plugs straight
into :class:`repro.workload.runner.ConcurrentWorkloadRunner` through
:func:`query_mix_work_fn`, and is what ``bench_e10`` drives against both
isolation levels while writer threads commit concurrently.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.database import GraphDatabase
from repro.workload.runner import WorkerOutcome, transactional


@dataclass(frozen=True)
class QueryTemplate:
    """One parameterised query: text, a parameter sampler and its weight."""

    name: str
    text: str
    params: Callable[[random.Random, List[str]], Dict[str, object]]
    weight: float = 1.0


def _person_param(rng: random.Random, names: List[str]) -> Dict[str, object]:
    return {"name": rng.choice(names)}


def _age_param(rng: random.Random, names: List[str]) -> Dict[str, object]:
    return {"min_age": rng.randint(20, 80)}


def _two_people(rng: random.Random, names: List[str]) -> Dict[str, object]:
    left, right = rng.sample(names, 2)
    return {"left": left, "right": right}


#: The default read mix (weights sum to 1.0 for readability, not necessity).
READ_TEMPLATES: Tuple[QueryTemplate, ...] = (
    QueryTemplate(
        "point_lookup",
        "MATCH (p:Person {name: $name}) RETURN p.name, p.age",
        _person_param,
        weight=0.35,
    ),
    QueryTemplate(
        "filtered_scan",
        "MATCH (p:Person) WHERE p.age >= $min_age "
        "RETURN p.name ORDER BY p.age DESC LIMIT 10",
        _age_param,
        weight=0.15,
    ),
    QueryTemplate(
        "friends",
        "MATCH (p:Person {name: $name})-[:KNOWS]-(f:Person) "
        "RETURN f.name ORDER BY f.name",
        _person_param,
        weight=0.20,
    ),
    QueryTemplate(
        "friends_of_friends",
        "MATCH (p:Person {name: $name})-[:KNOWS*1..2]-(f:Person) "
        "WHERE f.name <> $name RETURN DISTINCT f.name",
        _person_param,
        weight=0.15,
    ),
    QueryTemplate(
        "city_rollup",
        "MATCH (p:Person)-[:LIVES_IN]->(c:City) "
        "RETURN c.name AS city, count(p) AS residents ORDER BY residents DESC",
        lambda rng, names: {},
        weight=0.10,
    ),
    QueryTemplate(
        "degree_rank",
        "MATCH (p:Person)-[r:KNOWS]-() WITH p, count(r) AS degree "
        "RETURN p.name, degree ORDER BY degree DESC LIMIT 5",
        lambda rng, names: {},
        weight=0.05,
    ),
)

#: Write templates used by the benchmark's writer threads.
WRITE_TEMPLATES: Tuple[QueryTemplate, ...] = (
    QueryTemplate(
        "bump_score",
        "MATCH (p:Person {name: $name}) SET p.score = p.score + 1",
        _person_param,
        weight=0.7,
    ),
    QueryTemplate(
        "befriend",
        "MATCH (a:Person {name: $left}), (b:Person {name: $right}) "
        "CREATE (a)-[:KNOWS {since: 2016}]->(b)",
        _two_people,
        weight=0.3,
    ),
)


class QueryMix:
    """Weighted sampler over query templates, bound to one generated graph."""

    def __init__(
        self,
        person_names: Sequence[str],
        templates: Tuple[QueryTemplate, ...] = READ_TEMPLATES,
    ) -> None:
        if not person_names:
            raise ValueError("a query mix needs at least one person name")
        self.person_names = list(person_names)
        self.templates = templates
        self._weights = [template.weight for template in templates]

    def sample(self, rng: random.Random) -> Tuple[QueryTemplate, Dict[str, object]]:
        """One (template, parameters) draw from the weighted mix."""
        template = rng.choices(self.templates, weights=self._weights, k=1)[0]
        return template, template.params(rng, self.person_names)


def person_names_of(db: GraphDatabase) -> List[str]:
    """The ``name`` of every ``Person`` (to parameterise the mix)."""
    with db.begin(read_only=True) as tx:
        return [node.get("name") for node in tx.find_nodes(label="Person")]


def query_mix_work_fn(mix: QueryMix, *, read_only: bool = True, retries: int = 0):
    """A :class:`ConcurrentWorkloadRunner` work function running one query per call.

    Each invocation samples one query from the mix and runs it through
    :func:`~repro.workload.runner.transactional`, i.e. inside
    :meth:`GraphDatabase.run_transaction` — which owns the transaction and,
    when ``retries`` > 0, re-runs it with jittered backoff after conflict
    aborts (write-write under SI, rw-antidependency under serializable).
    The template name, row count and retry count are reported through the
    outcome's ``extra`` counters (``query:<name>``, ``rows``, ``retries``).
    """

    def body(tx, rng: random.Random, worker_id: int,
             iteration: int) -> WorkerOutcome:
        template, params = mix.sample(rng)
        rows = len(tx.execute(template.text, params).records())
        return WorkerOutcome(
            committed=True,
            extra={f"query:{template.name}": 1.0, "rows": float(rows)},
        )

    return transactional(body, retries=retries, read_only=read_only)
