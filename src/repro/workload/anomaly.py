"""Anomaly checkers.

Each checker runs entirely inside one transaction and reports whether the
transaction observed the anomaly.  Run under read committed they reproduce the
problems the paper's introduction describes; run under snapshot isolation they
must never fire (except write skew, which snapshot isolation permits — the
paper points this out explicitly).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.api.transaction import Transaction
from repro.graph.properties import PropertyValue


@dataclass
class AnomalyCounters:
    """Counts of observed anomalies across a workload run."""

    unrepeatable_reads: int = 0
    phantom_reads: int = 0
    lost_updates: int = 0
    write_skew: int = 0
    checks: int = 0

    def merge(self, other: "AnomalyCounters") -> None:
        """Fold another counter set into this one."""
        self.unrepeatable_reads += other.unrepeatable_reads
        self.phantom_reads += other.phantom_reads
        self.lost_updates += other.lost_updates
        self.write_skew += other.write_skew
        self.checks += other.checks

    def total(self) -> int:
        """Total anomalies of any kind."""
        return (
            self.unrepeatable_reads
            + self.phantom_reads
            + self.lost_updates
            + self.write_skew
        )

    def rate(self) -> float:
        """Anomalies per check performed."""
        return self.total() / self.checks if self.checks else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (used in benchmark result rows)."""
        return {
            "unrepeatable_reads": self.unrepeatable_reads,
            "phantom_reads": self.phantom_reads,
            "lost_updates": self.lost_updates,
            "write_skew": self.write_skew,
            "checks": self.checks,
            "rate": round(self.rate(), 4),
        }


def check_unrepeatable_read(
    tx: Transaction,
    node_id: int,
    property_key: str,
    *,
    delay_seconds: float = 0.0,
    pause: Optional[Callable[[], None]] = None,
) -> bool:
    """Read the same property twice in one transaction; True if the value changed.

    ``pause`` (or ``delay_seconds``) gives concurrent writers a window between
    the two reads — the paper's unrepeatable-read scenario.
    """
    first = tx.try_get_node(node_id)
    first_value = first.get(property_key) if first is not None else None
    if pause is not None:
        pause()
    elif delay_seconds > 0:
        time.sleep(delay_seconds)
    second = tx.try_get_node(node_id)
    second_value = second.get(property_key) if second is not None else None
    exists_changed = (first is None) != (second is None)
    return exists_changed or first_value != second_value


def check_phantom_read(
    tx: Transaction,
    *,
    label: Optional[str] = None,
    key: Optional[str] = None,
    value: Optional[PropertyValue] = None,
    delay_seconds: float = 0.0,
    pause: Optional[Callable[[], None]] = None,
) -> bool:
    """Run the same predicate scan twice in one transaction; True if the result set changed."""
    first: Set[int] = {node.id for node in tx.find_nodes(label=label, key=key, value=value)}
    if pause is not None:
        pause()
    elif delay_seconds > 0:
        time.sleep(delay_seconds)
    second: Set[int] = {node.id for node in tx.find_nodes(label=label, key=key, value=value)}
    return first != second


def check_traversal_consistency(
    tx: Transaction,
    start_node_id: int,
    *,
    rel_types: Optional[Sequence[str]] = None,
    pause: Optional[Callable[[], None]] = None,
) -> bool:
    """Two-step traversal consistency (the paper's motivating example).

    Step one collects the neighbours of ``start_node_id``; step two revisits
    each of them.  Returns True if a neighbour observed in step one has
    disappeared by step two — which read committed allows and snapshot
    isolation must prevent.
    """
    neighbours = [node.id for node in tx.neighbours(start_node_id, rel_types=rel_types)]
    if pause is not None:
        pause()
    for neighbour_id in neighbours:
        if tx.try_get_node(neighbour_id) is None:
            return True
    return False


class LostUpdateProbe:
    """Detects lost updates across a set of concurrent increment transactions.

    Every worker increments the same counter property by one in its own
    transaction (read-modify-write).  After the run, the counter should equal
    the number of successful commits; any shortfall is the number of updates
    that were silently overwritten.
    """

    def __init__(self, node_id: int, property_key: str = "counter") -> None:
        self.node_id = node_id
        self.property_key = property_key
        self._lock = threading.Lock()
        self.successful_increments = 0

    def increment(self, tx: Transaction, *, pause: Optional[Callable[[], None]] = None) -> None:
        """Perform one read-modify-write increment inside ``tx``."""
        node = tx.get_node(self.node_id)
        current = int(node.get(self.property_key, 0))
        if pause is not None:
            pause()
        tx.set_node_property(self.node_id, self.property_key, current + 1)

    def record_success(self) -> None:
        """Record that one increment transaction committed."""
        with self._lock:
            self.successful_increments += 1

    def lost_updates(self, tx: Transaction) -> int:
        """Number of committed increments that are missing from the counter."""
        node = tx.get_node(self.node_id)
        final_value = int(node.get(self.property_key, 0))
        return max(0, self.successful_increments - final_value)


class WriteSkewProbe:
    """The classic write-skew scenario over two account nodes.

    The application constraint is ``balance(a) + balance(b) >= 0``.  Each
    transaction reads both balances and, if the combined balance allows it,
    withdraws from one of the two accounts.  Snapshot isolation permits two
    concurrent withdrawals that together violate the constraint — the one
    anomaly the paper acknowledges SI does not prevent.
    """

    def __init__(self, account_a: int, account_b: int, withdraw_amount: int = 80) -> None:
        self.account_a = account_a
        self.account_b = account_b
        self.withdraw_amount = withdraw_amount

    def withdraw(self, tx: Transaction, from_account: int, *, pause: Optional[Callable[[], None]] = None) -> bool:
        """Withdraw if the combined balance allows it; True if a withdrawal happened."""
        balance_a = int(tx.get_node(self.account_a).get("balance", 0))
        balance_b = int(tx.get_node(self.account_b).get("balance", 0))
        if pause is not None:
            pause()
        if balance_a + balance_b >= self.withdraw_amount:
            current = balance_a if from_account == self.account_a else balance_b
            tx.set_node_property(from_account, "balance", current - self.withdraw_amount)
            return True
        return False

    def constraint_violated(self, tx: Transaction) -> bool:
        """Whether the combined balance has gone negative."""
        balance_a = int(tx.get_node(self.account_a).get("balance", 0))
        balance_b = int(tx.get_node(self.account_b).get("balance", 0))
        return balance_a + balance_b < 0
