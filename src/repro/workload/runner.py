"""Multi-threaded workload runner.

The runner spawns N worker threads against one database.  Each worker calls a
user-supplied *work function* repeatedly; the work function owns its
transaction and reports what happened through a :class:`WorkerOutcome`.  The
runner aggregates outcomes into a :class:`~repro.workload.metrics.WorkloadResult`
and takes care of the boring parts: start barrier, per-worker RNG seeding,
timing, retry/abort accounting, and turning engine exceptions into counters
instead of crashed threads.

Because Python threads share the GIL the absolute throughput numbers are not
meaningful as hardware measurements — the *relative* behaviour of the two
isolation levels under identical interleavings is what the experiments use.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.api.database import GraphDatabase, jittered_backoff
from repro.api.transaction import Transaction
from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    StorageError,
    TransactionAbortedError,
    WriteWriteConflictError,
    classify_abort,
)
from repro.workload.anomaly import AnomalyCounters
from repro.workload.metrics import WorkloadResult


@dataclass
class WorkerOutcome:
    """What one invocation of a work function did."""

    committed: bool = True
    anomalies: AnomalyCounters = field(default_factory=AnomalyCounters)
    extra: Dict[str, float] = field(default_factory=dict)


#: Work function signature: (database, rng, worker_id, iteration) -> outcome.
WorkFn = Callable[[GraphDatabase, random.Random, int, int], WorkerOutcome]


def transactional(
    tx_fn: Callable[[Transaction, random.Random, int, int], Optional[WorkerOutcome]],
    *,
    retries: int = 5,
    read_only: bool = False,
) -> WorkFn:
    """Adapt a per-transaction body into a :data:`WorkFn` with automatic retry.

    ``tx_fn(tx, rng, worker_id, iteration)`` runs inside a transaction owned
    by :meth:`GraphDatabase.run_transaction`, which retries it with jittered
    backoff on any conflict abort (write-write, rw-antidependency, deadlock).
    Retries are reported through the outcome's ``extra["retries"]`` so the
    runner can aggregate them.
    """

    def work(db: GraphDatabase, rng: random.Random, worker_id: int,
             iteration: int) -> WorkerOutcome:
        attempts = [0]

        def on_retry(attempt: int, _exc: TransactionAbortedError) -> None:
            attempts[0] = attempt + 1

        outcome = db.run_transaction(
            lambda tx: tx_fn(tx, rng, worker_id, iteration),
            retries=retries,
            read_only=read_only,
            rng=rng,
            on_retry=on_retry,
        )
        if outcome is None:
            outcome = WorkerOutcome()
        if attempts[0]:
            outcome.extra["retries"] = outcome.extra.get("retries", 0.0) + attempts[0]
        return outcome

    return work


@dataclass
class _WorkerReport:
    operations: int = 0
    committed: int = 0
    aborted: int = 0
    conflicts: int = 0
    deadlocks: int = 0
    retries: int = 0
    latencies: List[float] = field(default_factory=list)
    anomalies: AnomalyCounters = field(default_factory=AnomalyCounters)
    extra: Dict[str, float] = field(default_factory=dict)
    error: Optional[BaseException] = None


class ConcurrentWorkloadRunner:
    """Runs one work function concurrently from many threads.

    ``retries`` applies :meth:`GraphDatabase.run_transaction`'s retry
    discipline at the work-function level: an invocation that aborts on a
    conflict is re-invoked after a jittered exponential backoff, up to
    ``retries`` times, before the operation is finally counted as aborted.
    0 (the default) preserves the abort-counting behaviour the anomaly
    experiments rely on; throughput-oriented workloads set it so serializable
    runs converge instead of shedding skew-heavy operations.

    The budgets compose multiplicatively with retries *inside* the work
    function (``transactional(...)`` / ``db.run_transaction``): each runner
    re-invocation grants the work function its whole inner budget again.
    Configure the retry budget at one level, not both.
    """

    def __init__(
        self,
        db: GraphDatabase,
        *,
        workers: int = 4,
        operations_per_worker: int = 100,
        seed: int = 7,
        retries: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError("at least one worker is required")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.db = db
        self.workers = workers
        self.operations_per_worker = operations_per_worker
        self.seed = seed
        self.retries = retries

    def run(self, work_fn: WorkFn) -> WorkloadResult:
        """Execute the workload and return the aggregated result."""
        reports = [_WorkerReport() for _ in range(self.workers)]
        barrier = threading.Barrier(self.workers + 1)
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(work_fn, worker_id, reports[worker_id], barrier),
                name=f"workload-worker-{worker_id}",
                daemon=True,
            )
            for worker_id in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        duration = time.perf_counter() - started

        result = WorkloadResult(workers=self.workers, duration_seconds=duration)
        first_error: Optional[BaseException] = None
        for report in reports:
            if report.error is not None and first_error is None:
                first_error = report.error
            result.merge_worker(
                operations=report.operations,
                committed=report.committed,
                aborted=report.aborted,
                conflicts=report.conflicts,
                deadlocks=report.deadlocks,
                retries=report.retries,
                latencies=report.latencies,
                anomalies=report.anomalies,
            )
            for key, value in report.extra.items():
                result.extra[key] = result.extra.get(key, 0.0) + value
        if first_error is not None:
            raise first_error
        return result

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------

    def _worker_loop(
        self,
        work_fn: WorkFn,
        worker_id: int,
        report: _WorkerReport,
        barrier: threading.Barrier,
    ) -> None:
        try:
            barrier.wait()
            rng = random.Random(self.seed * 10_007 + worker_id + 1)
            for iteration in range(self.operations_per_worker):
                report.operations += 1
                started = time.perf_counter()
                try:
                    outcome = self._invoke(work_fn, rng, worker_id, iteration, report)
                except (WriteWriteConflictError, TransactionAbortedError,
                        StorageError, OSError) as exc:
                    # Storage/OS errors are caught alongside aborts so a
                    # workload run against a faulty disk degrades into
                    # counters instead of a crashed worker thread.
                    report.aborted += 1
                    reason = classify_abort(exc)
                    if reason in ("io-error", "degraded-mode"):
                        # Storage-layer casualties, not concurrency conflicts:
                        # counted apart so throughput runs against a faulty
                        # disk do not read as contention.
                        report.extra[reason] = report.extra.get(reason, 0.0) + 1
                    else:
                        report.conflicts += 1
                    if isinstance(exc, DeadlockError) or isinstance(exc, LockTimeoutError):
                        report.deadlocks += 1
                    continue
                finally:
                    report.latencies.append(time.perf_counter() - started)
                if outcome is None:
                    outcome = WorkerOutcome()
                if outcome.committed:
                    report.committed += 1
                else:
                    report.aborted += 1
                report.anomalies.merge(outcome.anomalies)
                for key, value in outcome.extra.items():
                    if key == "retries":
                        # Retries done inside the work function (e.g. via
                        # ``transactional``/``db.run_transaction``) fold into
                        # the same aggregate counter as runner-level retries.
                        report.retries += int(value)
                        continue
                    report.extra[key] = report.extra.get(key, 0.0) + value
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            report.error = exc

    def _invoke(
        self,
        work_fn: WorkFn,
        rng: random.Random,
        worker_id: int,
        iteration: int,
        report: _WorkerReport,
    ) -> Optional[WorkerOutcome]:
        """One operation, retried per the runner's retry budget.

        Mirrors :meth:`GraphDatabase.run_transaction` — same exception class,
        same jittered backoff — at the work-function granularity, since work
        functions own their transactions.
        """
        attempt = 0
        while True:
            try:
                return work_fn(self.db, rng, worker_id, iteration)
            except TransactionAbortedError:
                if attempt >= self.retries:
                    raise
                report.retries += 1
                time.sleep(jittered_backoff(attempt, rng=rng))
                attempt += 1


def run_mixed_workload(
    db: GraphDatabase,
    work_fn: WorkFn,
    *,
    workers: int = 4,
    operations_per_worker: int = 100,
    seed: int = 7,
    retries: int = 0,
) -> WorkloadResult:
    """One-call convenience wrapper around :class:`ConcurrentWorkloadRunner`."""
    runner = ConcurrentWorkloadRunner(
        db,
        workers=workers,
        operations_per_worker=operations_per_worker,
        seed=seed,
        retries=retries,
    )
    return runner.run(work_fn)
