"""Multi-threaded workload runner.

The runner spawns N worker threads against one database.  Each worker calls a
user-supplied *work function* repeatedly; the work function owns its
transaction and reports what happened through a :class:`WorkerOutcome`.  The
runner aggregates outcomes into a :class:`~repro.workload.metrics.WorkloadResult`
and takes care of the boring parts: start barrier, per-worker RNG seeding,
timing, retry/abort accounting, and turning engine exceptions into counters
instead of crashed threads.

Because Python threads share the GIL the absolute throughput numbers are not
meaningful as hardware measurements — the *relative* behaviour of the two
isolation levels under identical interleavings is what the experiments use.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.api.database import GraphDatabase
from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    TransactionAbortedError,
    WriteWriteConflictError,
)
from repro.workload.anomaly import AnomalyCounters
from repro.workload.metrics import WorkloadResult


@dataclass
class WorkerOutcome:
    """What one invocation of a work function did."""

    committed: bool = True
    anomalies: AnomalyCounters = field(default_factory=AnomalyCounters)
    extra: Dict[str, float] = field(default_factory=dict)


#: Work function signature: (database, rng, worker_id, iteration) -> outcome.
WorkFn = Callable[[GraphDatabase, random.Random, int, int], WorkerOutcome]


@dataclass
class _WorkerReport:
    operations: int = 0
    committed: int = 0
    aborted: int = 0
    conflicts: int = 0
    deadlocks: int = 0
    latencies: List[float] = field(default_factory=list)
    anomalies: AnomalyCounters = field(default_factory=AnomalyCounters)
    extra: Dict[str, float] = field(default_factory=dict)
    error: Optional[BaseException] = None


class ConcurrentWorkloadRunner:
    """Runs one work function concurrently from many threads."""

    def __init__(
        self,
        db: GraphDatabase,
        *,
        workers: int = 4,
        operations_per_worker: int = 100,
        seed: int = 7,
    ) -> None:
        if workers < 1:
            raise ValueError("at least one worker is required")
        self.db = db
        self.workers = workers
        self.operations_per_worker = operations_per_worker
        self.seed = seed

    def run(self, work_fn: WorkFn) -> WorkloadResult:
        """Execute the workload and return the aggregated result."""
        reports = [_WorkerReport() for _ in range(self.workers)]
        barrier = threading.Barrier(self.workers + 1)
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(work_fn, worker_id, reports[worker_id], barrier),
                name=f"workload-worker-{worker_id}",
                daemon=True,
            )
            for worker_id in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        duration = time.perf_counter() - started

        result = WorkloadResult(workers=self.workers, duration_seconds=duration)
        first_error: Optional[BaseException] = None
        for report in reports:
            if report.error is not None and first_error is None:
                first_error = report.error
            result.merge_worker(
                operations=report.operations,
                committed=report.committed,
                aborted=report.aborted,
                conflicts=report.conflicts,
                deadlocks=report.deadlocks,
                latencies=report.latencies,
                anomalies=report.anomalies,
            )
            for key, value in report.extra.items():
                result.extra[key] = result.extra.get(key, 0.0) + value
        if first_error is not None:
            raise first_error
        return result

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------

    def _worker_loop(
        self,
        work_fn: WorkFn,
        worker_id: int,
        report: _WorkerReport,
        barrier: threading.Barrier,
    ) -> None:
        try:
            barrier.wait()
            rng = random.Random(self.seed * 10_007 + worker_id + 1)
            for iteration in range(self.operations_per_worker):
                report.operations += 1
                started = time.perf_counter()
                try:
                    outcome = work_fn(self.db, rng, worker_id, iteration)
                except (WriteWriteConflictError, TransactionAbortedError) as exc:
                    report.aborted += 1
                    report.conflicts += 1
                    if isinstance(exc, DeadlockError) or isinstance(exc, LockTimeoutError):
                        report.deadlocks += 1
                    continue
                finally:
                    report.latencies.append(time.perf_counter() - started)
                if outcome is None:
                    outcome = WorkerOutcome()
                if outcome.committed:
                    report.committed += 1
                else:
                    report.aborted += 1
                report.anomalies.merge(outcome.anomalies)
                for key, value in outcome.extra.items():
                    report.extra[key] = report.extra.get(key, 0.0) + value
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            report.error = exc


def run_mixed_workload(
    db: GraphDatabase,
    work_fn: WorkFn,
    *,
    workers: int = 4,
    operations_per_worker: int = 100,
    seed: int = 7,
) -> WorkloadResult:
    """One-call convenience wrapper around :class:`ConcurrentWorkloadRunner`."""
    runner = ConcurrentWorkloadRunner(
        db, workers=workers, operations_per_worker=operations_per_worker, seed=seed
    )
    return runner.run(work_fn)
