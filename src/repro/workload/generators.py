"""Deterministic graph generators.

Every generator takes an explicit ``seed`` and produces the same graph for the
same arguments, so experiment runs are repeatable.  Graphs are created through
the public transaction API (never by poking the store directly), which keeps
the generated data valid under either engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api.database import GraphDatabase

#: First names used by the social-network generator (cycled with a suffix).
_FIRST_NAMES = [
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
    "ivan", "judy", "mallory", "niaj", "olivia", "peggy", "rupert", "sybil",
    "trent", "victor", "walter", "yolanda",
]

_CITIES = ["madrid", "lisbon", "paris", "berlin", "rome", "vienna", "prague", "dublin"]


@dataclass
class GeneratedGraph:
    """Handles to a generated graph: ids grouped by role."""

    node_ids: List[int] = field(default_factory=list)
    relationship_ids: List[int] = field(default_factory=list)
    groups: Dict[str, List[int]] = field(default_factory=dict)

    def group(self, name: str) -> List[int]:
        """Node ids registered under ``name`` (empty list if unknown)."""
        return self.groups.get(name, [])

    @property
    def node_count(self) -> int:
        """Number of generated nodes."""
        return len(self.node_ids)

    @property
    def relationship_count(self) -> int:
        """Number of generated relationships."""
        return len(self.relationship_ids)


def build_social_graph(
    db: GraphDatabase,
    *,
    people: int = 200,
    avg_friends: int = 4,
    cities: int = 5,
    seed: int = 7,
    batch_size: int = 200,
) -> GeneratedGraph:
    """A social network: ``Person`` nodes with ``KNOWS`` edges plus ``City`` homes.

    Friendships are sampled uniformly at random (self-loops and duplicates are
    skipped) for an expected degree of ``avg_friends``; every person lives in
    one city via a ``LIVES_IN`` relationship.
    """
    rng = random.Random(seed)
    graph = GeneratedGraph()
    city_ids: List[int] = []

    with db.transaction() as tx:
        for city_index in range(max(1, cities)):
            name = _CITIES[city_index % len(_CITIES)] + (
                "" if city_index < len(_CITIES) else f"-{city_index}"
            )
            node = tx.create_node(["City"], {"name": name, "population": rng.randint(10_000, 3_000_000)})
            city_ids.append(node.id)
    graph.groups["cities"] = city_ids
    graph.node_ids.extend(city_ids)

    person_ids: List[int] = []
    for start in range(0, people, batch_size):
        with db.transaction() as tx:
            for index in range(start, min(start + batch_size, people)):
                name = f"{_FIRST_NAMES[index % len(_FIRST_NAMES)]}-{index}"
                node = tx.create_node(
                    ["Person"],
                    {
                        "name": name,
                        "age": rng.randint(18, 90),
                        "score": 0,
                        "active": rng.random() < 0.8,
                    },
                )
                person_ids.append(node.id)
                tx.create_relationship(node.id, rng.choice(city_ids), "LIVES_IN")
    graph.groups["people"] = person_ids
    graph.node_ids.extend(person_ids)

    friendships = people * max(0, avg_friends) // 2
    created: set = set()
    for start in range(0, friendships, batch_size):
        with db.transaction() as tx:
            for _ in range(start, min(start + batch_size, friendships)):
                left, right = rng.sample(person_ids, 2) if len(person_ids) >= 2 else (None, None)
                if left is None or (left, right) in created or (right, left) in created:
                    continue
                created.add((left, right))
                relationship = tx.create_relationship(
                    left, right, "KNOWS", {"since": rng.randint(1990, 2016)}
                )
                graph.relationship_ids.append(relationship.id)
    return graph


def build_chain_graph(
    db: GraphDatabase, *, length: int = 100, label: str = "Step", seed: int = 7
) -> GeneratedGraph:
    """A simple chain ``(n0)-[:NEXT]->(n1)-[:NEXT]->...`` for traversal tests."""
    rng = random.Random(seed)
    graph = GeneratedGraph()
    with db.transaction() as tx:
        previous = None
        for index in range(length):
            node = tx.create_node([label], {"position": index, "weight": rng.random()})
            graph.node_ids.append(node.id)
            if previous is not None:
                relationship = tx.create_relationship(previous, node.id, "NEXT")
                graph.relationship_ids.append(relationship.id)
            previous = node.id
    graph.groups["chain"] = list(graph.node_ids)
    return graph


def build_grid_graph(
    db: GraphDatabase, *, width: int = 10, height: int = 10
) -> GeneratedGraph:
    """A ``width`` x ``height`` grid with ``EAST`` and ``SOUTH`` relationships."""
    graph = GeneratedGraph()
    positions: Dict[Tuple[int, int], int] = {}
    with db.transaction() as tx:
        for row in range(height):
            for column in range(width):
                node = tx.create_node(
                    ["Cell"], {"row": row, "column": column, "key": row * width + column}
                )
                positions[(row, column)] = node.id
                graph.node_ids.append(node.id)
        for (row, column), node_id in positions.items():
            if column + 1 < width:
                rel = tx.create_relationship(node_id, positions[(row, column + 1)], "EAST")
                graph.relationship_ids.append(rel.id)
            if row + 1 < height:
                rel = tx.create_relationship(node_id, positions[(row + 1, column)], "SOUTH")
                graph.relationship_ids.append(rel.id)
    graph.groups["cells"] = list(graph.node_ids)
    return graph


def build_account_graph(
    db: GraphDatabase,
    *,
    accounts: int = 50,
    initial_balance: int = 1_000,
    owners: Optional[int] = None,
    seed: int = 7,
) -> GeneratedGraph:
    """Bank-style accounts used by the conflict and write-skew experiments.

    ``Account`` nodes hold a ``balance`` property; each account is owned by a
    ``Customer`` node via an ``OWNS`` relationship (two accounts per customer
    by default, which is what the write-skew scenario needs).
    """
    rng = random.Random(seed)
    graph = GeneratedGraph()
    owner_count = owners if owners is not None else max(1, accounts // 2)
    with db.transaction() as tx:
        owner_ids = [
            tx.create_node(["Customer"], {"name": f"customer-{index}"}).id
            for index in range(owner_count)
        ]
        account_ids = []
        for index in range(accounts):
            account = tx.create_node(
                ["Account"],
                {"number": index, "balance": initial_balance, "currency": "EUR"},
            )
            account_ids.append(account.id)
            owner = owner_ids[index % owner_count]
            rel = tx.create_relationship(owner, account.id, "OWNS")
            graph.relationship_ids.append(rel.id)
        rng.shuffle(account_ids)
    graph.groups["accounts"] = account_ids
    graph.groups["customers"] = owner_ids
    graph.node_ids.extend(owner_ids)
    graph.node_ids.extend(account_ids)
    return graph
