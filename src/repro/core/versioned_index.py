"""Multi-versioned indexes.

Section 4 of the paper: "Multi-versioning has also been applied to indexes.
Properties and labels are never deleted in Neo4j even if no node/relationship
is using them.  We version them to know whether they should be considered or
not. ... The nodes/relationships are tagged with the commit timestamp of the
transaction that associated the label/property to the node/relationship.  In
this way, it is possible to discard those nodes/relationships that do not
correspond to the snapshot to be observed by the transaction."

Implementation: every index entry (label membership, property value, type
membership) is a set of *intervals* ``[created_ts, removed_ts)`` per entity.
A lookup at start timestamp ``s`` returns the entities with an interval
containing ``s``.  Each index key (the label or property itself) additionally
records its creation timestamp so a whole key created after the reader's
snapshot can be discarded without touching its entry list — exactly the
shortcut the paper describes.

Garbage collection calls :meth:`purge` with the watermark to drop intervals
that no active snapshot can select any more.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from repro.graph.entity import NodeData, RelationshipData
from repro.graph.properties import PropertyValue
from repro.index.property_index import hashable_value

#: Sentinel meaning "the entry has not been removed".
_OPEN = None


class VersionedEntrySet:
    """Per-index-key membership with ``[created_ts, removed_ts)`` intervals."""

    def __init__(self) -> None:
        self._intervals: Dict[int, List[List[Optional[int]]]] = {}
        #: Number of entities whose newest interval is still open.  Maintained
        #: incrementally so current-cardinality reads are O(1) (no set copy) —
        #: the query planner's cost estimates hit this on every MATCH.
        self._open_count = 0
        #: Memoised interval scan: ``(built_ts, members)`` — the result of
        #: ``visible(built_ts)``.  Valid for a snapshot ``S`` iff
        #: ``built_ts <= S`` and no interval changed since ``built_ts``
        #: (``_change_ts``, bumped by every add/remove before the owning
        #: commit publishes — so a snapshot that can see a change never
        #: validates an entry predating it).  Turns the per-lookup
        #: O(members × intervals) scan into a set copy on the hot path.
        self._visible_cache: Optional[Tuple[int, frozenset]] = None
        self._change_ts = 0

    def add(self, entity_id: int, commit_ts: int) -> None:
        """Record that the entity acquired this index key at ``commit_ts``.

        Adding an entity that is already a member (its latest interval is
        still open) is a no-op, so membership semantics hold even if a caller
        reports the same association twice.
        """
        intervals = self._intervals.setdefault(entity_id, [])
        if intervals and intervals[-1][1] is _OPEN:
            return
        if commit_ts > self._change_ts:
            self._change_ts = commit_ts
        intervals.append([commit_ts, _OPEN])
        self._open_count += 1

    def mark_removed(self, entity_id: int, commit_ts: int) -> None:
        """Record that the entity lost this index key at ``commit_ts``."""
        intervals = self._intervals.get(entity_id)
        if not intervals:
            return
        for interval in reversed(intervals):
            if interval[1] is _OPEN:
                if commit_ts > self._change_ts:
                    self._change_ts = commit_ts
                interval[1] = commit_ts
                self._open_count -= 1
                return

    def visible(self, start_ts: int) -> Set[int]:
        """Entities whose membership interval contains ``start_ts``."""
        cached = self._visible_cache
        if cached is not None:
            built_ts, cached_members = cached
            if built_ts <= start_ts and self._change_ts <= built_ts:
                return set(cached_members)
        members: Set[int] = set()
        for entity_id, intervals in self._intervals.items():
            for created_ts, removed_ts in intervals:
                if created_ts <= start_ts and (removed_ts is _OPEN or removed_ts > start_ts):
                    members.add(entity_id)
                    break
        if self._change_ts <= start_ts:
            self._visible_cache = (start_ts, frozenset(members))
        return members

    def current(self) -> Set[int]:
        """Entities whose newest interval is still open (the latest state)."""
        members: Set[int] = set()
        for entity_id, intervals in self._intervals.items():
            if any(removed_ts is _OPEN for _created, removed_ts in intervals):
                members.add(entity_id)
        return members

    @property
    def open_count(self) -> int:
        """Number of current members, without materialising the set (O(1))."""
        return self._open_count

    def purge(self, watermark: int) -> int:
        """Drop closed intervals no snapshot at or above ``watermark`` can see."""
        removed = 0
        for entity_id in list(self._intervals):
            kept = [
                interval
                for interval in self._intervals[entity_id]
                if interval[1] is _OPEN or interval[1] > watermark
            ]
            removed += len(self._intervals[entity_id]) - len(kept)
            if kept:
                self._intervals[entity_id] = kept
            else:
                del self._intervals[entity_id]
        return removed

    def drop_entity(self, entity_id: int) -> None:
        """Remove every interval of one entity (full purge of a deleted entity)."""
        self._visible_cache = None
        intervals = self._intervals.pop(entity_id, None)
        if intervals and intervals[-1][1] is _OPEN:
            self._open_count -= 1

    def is_empty(self) -> bool:
        """Whether no entity has any interval left."""
        return not self._intervals

    def interval_count(self) -> int:
        """Total number of stored intervals (memory metric for experiments)."""
        return sum(len(intervals) for intervals in self._intervals.values())


class _IndexShard:
    """One lock stripe of a keyed index: its own lock, entries and key table."""

    __slots__ = ("lock", "entries", "key_created_ts")

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self.entries: Dict[Hashable, VersionedEntrySet] = {}
        #: Commit timestamp at which each index key first appeared.
        self.key_created_ts: Dict[Hashable, int] = {}


class _VersionedKeyedIndex:
    """Shared machinery: a map from index key to a versioned entry set.

    The map is partitioned into lock stripes by index key, so committers
    tagging disjoint labels/properties/types never serialise on one index
    lock.  ``stripes=1`` restores the seed's single-lock behaviour.
    """

    def __init__(self, stripes: int = 16) -> None:
        if stripes < 1:
            raise ValueError("a versioned index needs at least one lock stripe")
        self._shards = [_IndexShard() for _ in range(stripes)]

    def _shard_of(self, index_key: Hashable) -> _IndexShard:
        return self._shards[hash(index_key) % len(self._shards)]

    def _add(self, index_key: Hashable, entity_id: int, commit_ts: int) -> None:
        shard = self._shard_of(index_key)
        with shard.lock:
            # Keep the *smallest* commit timestamp ever seen for the key:
            # under the sharded pipeline two committers can tag the same key
            # out of commit-timestamp order, and first-writer-wins would
            # permanently hide the older committer's entries from snapshots
            # between the two timestamps.
            created = shard.key_created_ts.get(index_key)
            if created is None or commit_ts < created:
                shard.key_created_ts[index_key] = commit_ts
            shard.entries.setdefault(index_key, VersionedEntrySet()).add(
                entity_id, commit_ts
            )

    def _remove(self, index_key: Hashable, entity_id: int, commit_ts: int) -> None:
        shard = self._shard_of(index_key)
        with shard.lock:
            entry = shard.entries.get(index_key)
            if entry is not None:
                entry.mark_removed(entity_id, commit_ts)

    def _visible(self, index_key: Hashable, start_ts: int) -> Set[int]:
        shard = self._shard_of(index_key)
        with shard.lock:
            created_ts = shard.key_created_ts.get(index_key)
            if created_ts is None or created_ts > start_ts:
                # The label/property itself appeared after the snapshot: the
                # whole entry list can be discarded without traversal.
                return set()
            entry = shard.entries.get(index_key)
            return entry.visible(start_ts) if entry is not None else set()

    def _drop_entity(self, entity_id: int) -> None:
        for shard in self._shards:
            with shard.lock:
                for entry in shard.entries.values():
                    entry.drop_entity(entity_id)

    def purge(self, watermark: int) -> int:
        """Drop intervals invisible to every snapshot at or above ``watermark``."""
        removed = 0
        for shard in self._shards:
            with shard.lock:
                removed += sum(
                    entry.purge(watermark) for entry in shard.entries.values()
                )
        return removed

    def count_current(self, index_key: Hashable) -> int:
        """Current cardinality of one index key in O(1) (no set copy).

        This is the planner's cardinality-estimate fast path: it reads the
        entry's incrementally-maintained open-interval counter instead of
        materialising the membership set.  The count reflects the *latest*
        committed state rather than any particular snapshot, which is exactly
        what a cost estimate needs.
        """
        shard = self._shard_of(index_key)
        with shard.lock:
            entry = shard.entries.get(index_key)
            return entry.open_count if entry is not None else 0

    def current_cardinalities(self) -> Dict[Hashable, int]:
        """Current cardinality of every non-empty key (stats/EXPLAIN surface)."""
        result: Dict[Hashable, int] = {}
        for shard in self._shards:
            with shard.lock:
                for index_key, entry in shard.entries.items():
                    if entry.open_count:
                        result[index_key] = entry.open_count
        return result

    def key_creation_ts(self, index_key: Hashable) -> Optional[int]:
        """When ``index_key`` was first used (``None`` if never)."""
        shard = self._shard_of(index_key)
        with shard.lock:
            return shard.key_created_ts.get(index_key)

    def interval_count(self) -> int:
        """Total intervals across all keys (memory metric)."""
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += sum(
                    entry.interval_count() for entry in shard.entries.values()
                )
        return total


class VersionedLabelIndex(_VersionedKeyedIndex):
    """label -> versioned set of node ids."""

    def apply_node_change(
        self, old: Optional[NodeData], new: Optional[NodeData], commit_ts: int
    ) -> None:
        """Record label additions/removals implied by one committed node change."""
        node_id = (old or new).node_id  # type: ignore[union-attr]
        old_labels = old.labels if old is not None else frozenset()
        new_labels = new.labels if new is not None else frozenset()
        for label in new_labels - old_labels:
            self._add(label, node_id, commit_ts)
        for label in old_labels - new_labels:
            self._remove(label, node_id, commit_ts)

    def visible(self, label: str, start_ts: int) -> Set[int]:
        """Node ids carrying ``label`` in the snapshot at ``start_ts``."""
        return self._visible(label, start_ts)

    def count(self, label: str) -> int:
        """Number of nodes currently carrying ``label`` (O(1), no set copy)."""
        return self.count_current(label)

    def drop_node(self, node_id: int) -> None:
        """Forget a fully purged node."""
        self._drop_entity(node_id)


class VersionedPropertyIndex(_VersionedKeyedIndex):
    """(property key, value) -> versioned set of entity ids.

    Used twice: once for nodes and once for relationships.
    """

    def apply_change(
        self,
        entity_id: int,
        old_properties: Mapping[str, PropertyValue],
        new_properties: Mapping[str, PropertyValue],
        commit_ts: int,
    ) -> None:
        """Record property additions/changes/removals for one committed change."""
        for key, value in new_properties.items():
            if key not in old_properties or old_properties[key] != value:
                self._add((key, hashable_value(value)), entity_id, commit_ts)
        for key, value in old_properties.items():
            if key not in new_properties or new_properties[key] != value:
                self._remove((key, hashable_value(value)), entity_id, commit_ts)

    def visible(self, key: str, value: PropertyValue, start_ts: int) -> Set[int]:
        """Entity ids with ``key`` = ``value`` in the snapshot at ``start_ts``."""
        return self._visible((key, hashable_value(value)), start_ts)

    def count(self, key: str, value: PropertyValue) -> int:
        """Number of entities currently holding ``key`` = ``value`` (O(1))."""
        return self.count_current((key, hashable_value(value)))

    def drop_entity(self, entity_id: int) -> None:
        """Forget a fully purged entity."""
        self._drop_entity(entity_id)


class VersionedRelationshipTypeIndex(_VersionedKeyedIndex):
    """relationship type -> versioned set of relationship ids."""

    def apply_relationship_change(
        self,
        old: Optional[RelationshipData],
        new: Optional[RelationshipData],
        commit_ts: int,
    ) -> None:
        """Record type membership for a committed relationship create/delete."""
        if old is None and new is not None:
            self._add(new.rel_type, new.rel_id, commit_ts)
        elif old is not None and new is None:
            self._remove(old.rel_type, old.rel_id, commit_ts)

    def visible(self, rel_type: str, start_ts: int) -> Set[int]:
        """Relationship ids of ``rel_type`` in the snapshot at ``start_ts``."""
        return self._visible(rel_type, start_ts)

    def count(self, rel_type: str) -> int:
        """Number of relationships currently of ``rel_type`` (O(1))."""
        return self.count_current(rel_type)

    def drop_relationship(self, rel_id: int) -> None:
        """Forget a fully purged relationship."""
        self._drop_entity(rel_id)


class AdjacencyIndex:
    """node id -> relationship ids that have (or recently had) that endpoint.

    Visibility is *not* encoded here: a lookup returns candidate relationship
    ids and the caller resolves each against its snapshot.  Entries are only
    removed when a relationship is fully purged by garbage collection, so a
    snapshot older than a relationship delete still finds the candidate and
    resolves it to the pre-delete version.
    """

    def __init__(self, stripes: int = 16) -> None:
        if stripes < 1:
            raise ValueError("the adjacency index needs at least one lock stripe")
        self._locks = [threading.RLock() for _ in range(stripes)]
        self._shards: List[Dict[int, Set[int]]] = [{} for _ in range(stripes)]

    def _shard_index(self, node_id: int) -> int:
        return node_id % len(self._shards)

    def add(self, relationship: RelationshipData) -> None:
        """Register a committed relationship under both endpoints.

        Each endpoint's entry lives in its own stripe and is updated
        independently; readers of one node's candidates only need that node's
        stripe to be consistent.
        """
        for node_id in {relationship.start_node, relationship.end_node}:
            index = self._shard_index(node_id)
            with self._locks[index]:
                self._shards[index].setdefault(node_id, set()).add(relationship.rel_id)

    def discard(self, relationship: RelationshipData) -> None:
        """Remove a fully purged relationship from both endpoints."""
        for node_id in {relationship.start_node, relationship.end_node}:
            index = self._shard_index(node_id)
            with self._locks[index]:
                members = self._shards[index].get(node_id)
                if members is not None:
                    members.discard(relationship.rel_id)
                    if not members:
                        del self._shards[index][node_id]

    def drop_node(self, node_id: int) -> None:
        """Forget a fully purged node."""
        index = self._shard_index(node_id)
        with self._locks[index]:
            self._shards[index].pop(node_id, None)

    def candidate_rel_ids(self, node_id: int) -> Set[int]:
        """Candidate relationship ids touching ``node_id`` (copy)."""
        index = self._shard_index(node_id)
        with self._locks[index]:
            return set(self._shards[index].get(node_id, ()))

    def node_count(self) -> int:
        """Number of nodes with at least one candidate relationship."""
        total = 0
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                total += len(shard)
        return total

    def entry_count(self) -> int:
        """Total number of (node, relationship) entries."""
        total = 0
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                total += sum(len(members) for members in shard.values())
        return total


class VersionedIndexSet:
    """All multi-versioned indexes bundled together (what the engine owns).

    ``stripes`` controls the lock striping of every member index; the engine
    passes its commit-stripe count through so ``commit_stripes=1`` degenerates
    the whole pipeline to the seed's fully-serialised behaviour.

    ``stats_epoch`` is the engine's :class:`~repro.stats.CardinalityEpoch`:
    every committed entity change is recorded into it, so the query plan
    cache expires once the cardinalities these indexes feed the planner have
    drifted significantly.
    """

    def __init__(self, stripes: int = 16, *, stats_epoch=None) -> None:
        self.node_labels = VersionedLabelIndex(stripes)
        self.node_properties = VersionedPropertyIndex(stripes)
        self.relationship_properties = VersionedPropertyIndex(stripes)
        self.relationship_types = VersionedRelationshipTypeIndex(stripes)
        self.adjacency = AdjacencyIndex(stripes)
        self.stats_epoch = stats_epoch

    def apply_node_change(
        self, old: Optional[NodeData], new: Optional[NodeData], commit_ts: int
    ) -> None:
        """Index maintenance for one committed node create/update/delete."""
        if old is None and new is None:
            return
        node_id = (old or new).node_id  # type: ignore[union-attr]
        self.node_labels.apply_node_change(old, new, commit_ts)
        self.node_properties.apply_change(
            node_id,
            old.properties if old is not None else {},
            new.properties if new is not None else {},
            commit_ts,
        )
        if self.stats_epoch is not None:
            self.stats_epoch.record((old is None) - (new is None))

    def apply_relationship_change(
        self,
        old: Optional[RelationshipData],
        new: Optional[RelationshipData],
        commit_ts: int,
    ) -> None:
        """Index maintenance for one committed relationship create/update/delete."""
        if old is None and new is None:
            return
        rel_id = (old or new).rel_id  # type: ignore[union-attr]
        self.relationship_properties.apply_change(
            rel_id,
            old.properties if old is not None else {},
            new.properties if new is not None else {},
            commit_ts,
        )
        self.relationship_types.apply_relationship_change(old, new, commit_ts)
        if old is None and new is not None:
            self.adjacency.add(new)
        if self.stats_epoch is not None:
            self.stats_epoch.record((old is None) - (new is None))

    def purge(self, watermark: int) -> int:
        """Purge every index; returns the number of intervals dropped."""
        return (
            self.node_labels.purge(watermark)
            + self.node_properties.purge(watermark)
            + self.relationship_properties.purge(watermark)
            + self.relationship_types.purge(watermark)
        )

    def purge_node(self, node: NodeData) -> None:
        """Remove every trace of a fully garbage-collected node."""
        self.node_labels.drop_node(node.node_id)
        self.node_properties.drop_entity(node.node_id)
        self.adjacency.drop_node(node.node_id)

    def purge_relationship(self, relationship: RelationshipData) -> None:
        """Remove every trace of a fully garbage-collected relationship."""
        self.relationship_properties.drop_entity(relationship.rel_id)
        self.relationship_types.drop_relationship(relationship.rel_id)
        self.adjacency.discard(relationship)

    def interval_count(self) -> int:
        """Total intervals across all indexes (memory metric for E6)."""
        return (
            self.node_labels.interval_count()
            + self.node_properties.interval_count()
            + self.relationship_properties.interval_count()
            + self.relationship_types.interval_count()
        )
