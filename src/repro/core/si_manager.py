"""The snapshot-isolation engine.

This is where the pieces of Section 4 of the paper meet:

* transactions get their snapshot from the :class:`~repro.core.timestamps.TimestampOracle`,
* reads resolve through version chains kept in the object cache
  (:class:`~repro.core.version_store.VersionStore`),
* the write rule is enforced by the :class:`~repro.core.conflict.ConflictDetector`
  reusing the long write locks (first-updater-wins),
* commit installs new versions, tags the multi-versioned indexes with the
  commit timestamp, threads superseded versions onto the garbage-collection
  list, and writes **only the newest committed version** of each entity to the
  persistent store, and
* garbage collection reclaims exactly the versions no active snapshot can
  still read.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.cc_policy import (
    RETAKE_SNAPSHOT,
    Change,
    ConcurrencyControlPolicy,
    SerializableSnapshotPolicy,
    SnapshotWriteRulePolicy,
)
from repro.core.conflict import ConflictPolicy
from repro.core.gc import GarbageCollector, GcStats, ThreadedVersionList
from repro.core.si_transaction import SnapshotTransaction
from repro.core.snapshot import Snapshot
from repro.core.timestamps import TimestampOracle
from repro.core.vacuum import VacuumCollector
from repro.core.version import Version, VersionChain
from repro.core.version_store import VersionStore, stripe_of
from repro.core.visibility import resolve_payloads
from repro.core.versioned_index import VersionedIndexSet
from repro.engine import GraphEngine, IsolationLevel
from repro.errors import WriteWriteConflictError
from repro.graph.entity import (
    EntityKey,
    EntityKind,
    NodeData,
    RelationshipData,
)
from repro.graph.operations import (
    DeleteNodeOp,
    DeleteRelationshipOp,
    StoreOperation,
    WriteNodeOp,
    WriteRelationshipOp,
)
from repro.graph.properties import RESERVED_PROPERTY_PREFIX
from repro.graph.store_manager import StoreManager
from repro.locking.lock_manager import LockManager
from repro.obs import Observability
from repro.query.cache import DEFAULT_QUERY_CACHE_SIZE, QueryCaches
from repro.stats import CardinalityEpoch, CommitPipelineStats, EngineStats

#: Reserved property carrying the commit timestamp of the persisted version
#: (the extra property the paper adds to nodes and relationships).
COMMIT_TS_PROPERTY = RESERVED_PROPERTY_PREFIX + "commit_ts"

#: Default number of commit stripes (1 restores the seed's global mutex).
DEFAULT_COMMIT_STRIPES = 16

#: Default rows per :class:`~repro.query.vectorized.RowBatch` in the
#: vectorized executor (and the granularity of batched SIREAD registration).
DEFAULT_QUERY_BATCH_SIZE = 1024

#: Minimum *estimated* leaf-scan cardinality before the planner marks a scan
#: for morsel-parallel execution (only consulted when ``morsel_workers`` > 1).
DEFAULT_MORSEL_THRESHOLD = 2048

#: Maximum nodes in the engine-level resolved-adjacency cache (entries for
#: additional nodes are simply not stored; existing keys keep refreshing).
ADJACENCY_CACHE_LIMIT = 16_384

#: Maximum entries in the engine-level resolved-payload cache (same
#: admission policy as the adjacency cache).
PAYLOAD_CACHE_LIMIT = 65_536

#: Under SSI, reclaim the policy's tracking state (SIREADs, commit log,
#: write registry) every N version-installing commits, independently of the
#: version GC cadence.  Without this a long-running serializable database
#: that never runs GC would grow its commit log without bound and pay an
#: ever-longer predicate scan per read.
SSI_RECLAIM_EVERY_N_COMMITS = 64


class SnapshotIsolationEngine(GraphEngine):
    """Multi-version engine providing snapshot isolation (the paper's system).

    The same engine also provides **serializable** isolation: concurrency
    control is a pluggable :class:`~repro.core.cc_policy.ConcurrencyControlPolicy`,
    and opening the engine with ``isolation=IsolationLevel.SERIALIZABLE``
    swaps the plain write-rule policy for the SSI policy, which additionally
    tracks rw-antidependencies from the read path and aborts transactions
    that would complete a dangerous structure.
    """

    isolation_level = IsolationLevel.SNAPSHOT

    def __init__(
        self,
        store: StoreManager,
        *,
        lock_manager: Optional[LockManager] = None,
        conflict_policy: ConflictPolicy = ConflictPolicy.FIRST_UPDATER_WINS,
        isolation: IsolationLevel = IsolationLevel.SNAPSHOT,
        cc_policy: Optional[ConcurrencyControlPolicy] = None,
        version_cache_capacity: int = 200_000,
        gc_every_n_commits: int = 0,
        commit_stripes: int = DEFAULT_COMMIT_STRIPES,
        snapshot_read_cache: bool = True,
        query_cache_size: int = DEFAULT_QUERY_CACHE_SIZE,
        query_batch_size: int = DEFAULT_QUERY_BATCH_SIZE,
        query_executor: str = "batch",
        morsel_workers: int = 0,
        morsel_threshold: int = DEFAULT_MORSEL_THRESHOLD,
        safe_snapshots: bool = True,
        defer_readonly: bool = False,
        obs: Optional[Observability] = None,
    ) -> None:
        """Create an engine over an open store.

        ``isolation`` selects the concurrency-control policy: ``SNAPSHOT``
        enforces only the write rule, ``SERIALIZABLE`` adds SSI
        rw-antidependency tracking.  ``cc_policy`` overrides the default
        policy for the level (experiments can inject instrumented policies).

        ``gc_every_n_commits`` > 0 runs a garbage-collection pass automatically
        after every N version-installing commits; 0 leaves collection entirely
        to explicit :meth:`run_gc` calls (what the benchmarks do, so they can
        measure it).

        ``commit_stripes`` shards the commit critical section: each committing
        transaction locks only the stripes covering its write set (plus the
        structural neighbourhood it validates), so commits on disjoint key
        sets proceed concurrently.  ``commit_stripes=1`` restores the seed's
        fully-serialised single-mutex behaviour.

        ``snapshot_read_cache`` enables the per-transaction caches of resolved
        payloads and adjacency lists (safe because a snapshot is immutable);
        ``query_cache_size`` sizes the per-database parse and plan caches
        (0 disables them).

        ``query_batch_size`` sets the rows-per-batch of the vectorized
        executor; ``query_executor`` selects ``"batch"`` (default) or
        ``"row"`` (the pre-vectorization pull executor).  ``morsel_workers``
        > 1 lets untracked read-only leaf scans split their id ranges into
        that many morsels over a shared thread pool (0 — the default —
        keeps scans single-threaded; the GIL makes parallel resolution pay
        off only on free-threaded builds); ``morsel_threshold`` is the
        estimated scan cardinality below which the planner never chooses
        morsel execution.

        ``safe_snapshots`` (serializable only) gates read-only transactions
        PostgreSQL-style so the Fekete read-only-transaction anomaly cannot
        occur; disabling it restores the bare read-only optimisation (used
        by the anomaly test harness).  ``defer_readonly`` makes read-only
        serializable begins *deferrable* by default: ``begin`` blocks until
        a safe snapshot is available instead of tracking the reader
        optimistically (per-transaction override via ``begin(deferrable=)``).

        ``obs`` is the observability bundle (metrics registry + transaction
        tracer + slow-query log) this engine reports into; a bare engine
        gets its own private bundle with tracing disabled.
        """
        if commit_stripes < 1:
            raise ValueError("the engine needs at least one commit stripe")
        if isolation is IsolationLevel.READ_COMMITTED:
            raise ValueError("the MVCC engine does not provide read committed")
        self.store = store
        self.locks = lock_manager or LockManager()
        self.oracle = TimestampOracle()
        self.versions = VersionStore(
            cache_capacity=version_cache_capacity, stripes=commit_stripes
        )
        self.stats_epoch = CardinalityEpoch()
        self.indexes = VersionedIndexSet(
            stripes=commit_stripes, stats_epoch=self.stats_epoch
        )
        self.snapshot_read_cache = snapshot_read_cache
        self.query_caches = QueryCaches(query_cache_size)
        #: Engine-level cache of fully resolved committed adjacency lists,
        #: shared across transactions: ``(node_id, variant) -> (built_ts,
        #: payloads)``, where ``variant`` is ``None`` for the raw committed
        #: list or a ``(direction, types)`` filter projection of it.
        #: An entry is valid for a snapshot ``S`` iff ``built_ts <= S`` and
        #: the node's adjacency has not changed since ``built_ts`` (tracked
        #: by ``_adjacency_stamp``, bumped inside the commit critical
        #: section *before* the commit is published — so a snapshot that can
        #: see a change can never validate an entry predating it; in-flight
        #: commits fail validation conservatively).  Only transactions that
        #: do no read tracking consult it (plain snapshot isolation): SSI
        #: readers must register per-relationship SIREADs and keep paying
        #: the resolving path.
        self._adjacency_payloads: Dict[
            Tuple[int, object], Tuple[int, Sequence[object]]
        ] = {}
        self._adjacency_stamp: Dict[int, int] = {}
        #: Engine-level cache of resolved committed payloads, shared across
        #: transactions and isolation levels: ``key -> (built_ts, payload)``
        #: with the same stamp-validation scheme as the adjacency cache
        #: (``_payload_stamp[key]`` is bumped by every version install for
        #: the key, inside the commit critical section before publish).
        #: Unlike the adjacency cache this one is consulted by *all*
        #: transactions: SIREAD/predicate registration happens in the
        #: transaction layer before the engine read rule runs, so the
        #: engine-level resolution is a pure function of ``(key, snapshot)``
        #: and sharing it never skips read tracking.
        self._payload_cache: Dict[EntityKey, Tuple[int, Optional[object]]] = {}
        self._payload_stamp: Dict[EntityKey, int] = {}
        #: Vectorized-executor knobs (read by :mod:`repro.query` at execute
        #: time and by the planner's morsel decision; see the class docstring
        #: additions below).  ``query_executor`` selects "batch" (default) or
        #: "row" (the pre-vectorization pull executor, kept as a fallback).
        self.query_batch_size = max(1, int(query_batch_size))
        self.query_executor = query_executor
        self.morsel_workers = max(0, int(morsel_workers))
        self.morsel_threshold = max(1, int(morsel_threshold))
        if cc_policy is None:
            if isolation is IsolationLevel.SERIALIZABLE:
                cc_policy = SerializableSnapshotPolicy(
                    self.locks, conflict_policy, safe_snapshots=safe_snapshots
                )
            else:
                cc_policy = SnapshotWriteRulePolicy(self.locks, conflict_policy)
        self.cc = cc_policy
        self.defer_readonly = defer_readonly
        self.isolation_level = isolation
        self.gc = GarbageCollector(
            self.versions,
            self.oracle,
            self.indexes,
            ThreadedVersionList(),
            cc_policy=self.cc,
        )
        self.obs = obs if obs is not None else Observability()
        self.stats = EngineStats(self.obs.registry)
        self.commit_pipeline_stats = CommitPipelineStats()
        self._gc_every_n_commits = gc_every_n_commits
        self._versioned_commits = 0
        self._writeless_commits = 0
        self._failpoints = store.failpoints
        # IO-path abort causes surfaced by `abort_reasons()`; the policy
        # cannot count these (they originate below it, in the store layer).
        self._io_abort_counts = {"io-error": 0, "degraded-mode": 0}
        # Guards the outcome counters and the GC trigger: the commit path is
        # concurrent now, and unsynchronised `+=` loses increments.
        self._counter_lock = threading.Lock()
        self._commit_stripes = [threading.Lock() for _ in range(commit_stripes)]
        self._bootstrap_indexes()

    # ------------------------------------------------------------------
    # transaction lifecycle
    # ------------------------------------------------------------------

    @property
    def conflicts(self):
        """The write-rule conflict detector (hosted by the CC policy).

        ``None`` for injected policies outside the write-rule hierarchy; the
        statistics surface goes through the policy interface instead of this
        accessor, so such policies remain fully usable.
        """
        return getattr(self.cc, "detector", None)

    def begin(
        self, *, read_only: bool = False, deferrable: Optional[bool] = None
    ) -> SnapshotTransaction:
        """Start a transaction with a fresh snapshot of the committed state.

        Read-only transactions under a read-tracking (serializable) policy
        take the safe-snapshot path: the oracle grants the snapshot together
        with a census of in-flight read-write transactions, and the policy
        decides whether the snapshot is safe from birth (the common case,
        free), must be tracked while the census drains (non-deferrable), or
        — with ``deferrable=True`` — should block here and retake the
        snapshot until a safe one is available, after which the transaction
        runs completely untracked and can never interact with the
        serializability machinery at all.

        A degraded engine fences write transactions here with
        :class:`~repro.errors.DatabaseReadOnlyError`; read-only transactions
        keep working from the in-memory version chains and the object cache.
        """
        if not read_only:
            self.store.health.ensure_writable()
        self.stats.record_begin()
        # Tracing starts before the oracle grant so the `begin` phase covers
        # the grant itself, the census and any safe-snapshot retake loop.
        trace = self.obs.tracer.maybe_start(0, read_only=read_only)
        if deferrable is None:
            deferrable = self.defer_readonly
        if not (read_only and self.cc.tracks_reads):
            txn_id, start_ts = self.oracle.begin_transaction()
            record = self.cc.begin_transaction(txn_id, start_ts, read_only=read_only)
            txn = SnapshotTransaction(
                self,
                Snapshot(txn_id=txn_id, start_ts=start_ts),
                read_only=read_only,
                cc_record=record,
            )
            return self._attach_trace(txn, trace)
        retakes = 0
        while True:
            txn_id, start_ts, census = self.oracle.begin_read_only_transaction()
            handle = self.cc.begin_read_only(
                txn_id, start_ts, census, deferrable=deferrable
            )
            if handle is RETAKE_SNAPSHOT:
                # A census member committed dangerously but has not yet
                # published; its publication completes within its commit
                # critical section, so the fresh snapshot covers it.
                self.oracle.retire_transaction(txn_id)
                retakes += 1
                continue
            if handle is not None and deferrable:
                safe = self.cc.wait_for_safe_snapshot(handle)
                if not safe:
                    self.oracle.retire_transaction(txn_id)
                    retakes += 1
                    continue
                handle = None  # proven safe: run fully untracked
            txn = SnapshotTransaction(
                self,
                Snapshot(txn_id=txn_id, start_ts=start_ts),
                read_only=True,
                cc_record=None,
                safe_snapshot=handle,
            )
            if trace is not None and retakes:
                trace.annotate("snapshot_retakes", retakes)
            return self._attach_trace(txn, trace)

    @staticmethod
    def _attach_trace(txn: SnapshotTransaction, trace) -> SnapshotTransaction:
        """Bind a sampled trace to its transaction and close the begin phase."""
        if trace is not None:
            trace.txn_id = txn.txn_id
            trace.mark("begin")
            txn.trace = trace
        return txn

    def commit_transaction(self, txn: SnapshotTransaction) -> None:
        """Commit: validate the write rule, install versions, persist, publish.

        The critical section is sharded: the transaction acquires, in sorted
        order (deadlock-free), only the commit stripes covering its write set
        plus the structural neighbourhood its validation reads — the endpoint
        nodes of created relationships and the adjacent relationships of
        deleted nodes.  Commits on disjoint stripe sets run concurrently; the
        oracle's pending-commit protocol keeps new snapshots behind any
        committer that is still installing.
        """
        trace = txn.trace
        if trace is not None:
            # Everything since the begin mark was the transaction's own work.
            trace.mark("read")
        if not txn.has_writes():
            self.oracle.retire_transaction(txn.txn_id)
            if txn.safe_snapshot is not None:
                self.cc.finish_read_only(txn.safe_snapshot)
            # A committed-but-writeless transaction still finished reading at
            # this point in commit order; the policy needs that boundary to
            # judge concurrency against later committers.
            self.cc.finish_transaction(
                txn.txn_id,
                txn.cc_record,
                committed=True,
                visible_ts=self.oracle.latest_commit_ts,
                finish_seq=self.oracle.newest_txn_id(),
            )
            self.cc.release_locks(txn.txn_id)
            self.stats.record_commit()
            with self._counter_lock:
                self._writeless_commits += 1
                # Writeless commits leave tracking records too (their SIREADs
                # must outlive concurrent writers), so they drive the policy
                # reclaim cadence independently of version-installing commits
                # — otherwise a pure-read serializable workload would grow
                # the tracker without bound.
                cc_reclaim_due = (
                    self.cc.tracks_reads
                    and self._writeless_commits % SSI_RECLAIM_EVERY_N_COMMITS == 0
                )
            if cc_reclaim_due:
                self._reclaim_cc_state()
            if trace is not None:
                trace.mark("publish")
                trace.finish("committed")
                self.obs.tracer.record(trace)
            return
        writes = self._effective_writes(txn)
        # Fence before any version install: a writer committing after the
        # engine degraded must not publish in-memory versions that can never
        # be made durable (apply_batch fences again, for commits racing the
        # degradation itself).
        self.store.health.ensure_writable()
        try:
            if self._failpoints is not None:
                fault = self._failpoints.hit("commit.stripe_acquire")
                if fault is not None:
                    fault.raise_fault()
            stripe_set = self._commit_stripe_set(txn, writes)
            with self._acquire_stripes(stripe_set):
                if trace is not None:
                    trace.mark("stripe_wait")
                    trace.annotate("stripes", len(stripe_set))
                self._validate(txn, writes)
                changes = self._collect_changes(writes) if self.cc.tracks_reads else ()
                commit_ts = self.oracle.issue_commit_timestamp()
                try:
                    # SSI dangerous-structure check + commit publication to the
                    # policy, before any version installs: a serialization
                    # abort raised here leaves nothing to undo.
                    self.cc.record_commit(txn.cc_record, changes, commit_ts)
                    if trace is not None:
                        trace.mark("validate")
                    old_states = self._install_versions(txn, writes, commit_ts)
                    self._update_indexes(writes, old_states, commit_ts)
                    if trace is not None:
                        trace.mark("install")
                    operations = self._build_store_operations(writes, commit_ts)
                    try:
                        self.store.apply_batch(txn.txn_id, operations)
                    except BaseException:
                        # The batch never became durable, but publish_commit
                        # below still advances the watermark past commit_ts —
                        # anything left installed would become visible to
                        # every later snapshot while recovery would drop it.
                        self._revert_installs(writes, old_states, commit_ts)
                        raise
                    if self._failpoints is not None:
                        # Fires after the durable append but before the
                        # commit is acknowledged — the deterministic probe
                        # for the "durable but un-acked" window.
                        fault = self._failpoints.hit("commit.publish")
                        if fault is not None:
                            fault.raise_fault()
                    if trace is not None:
                        trace.mark("wal")
                        trace.annotate("writes", len(writes))
                finally:
                    # Publish unconditionally so a failed install can never
                    # wedge the snapshot watermark (store operations are not
                    # expected to fail; this mirrors the seed, where the next
                    # publish exposed whatever had been installed).
                    self.oracle.publish_commit(txn.txn_id, commit_ts)
                txn.commit_ts = commit_ts
        finally:
            self.cc.release_locks(txn.txn_id)
        self.stats.record_commit()
        # The counter and the modulo decision must move together: concurrent
        # committers racing an unlocked += can jump the counter past the
        # trigger boundary and skip a scheduled GC pass entirely.
        with self._counter_lock:
            self._versioned_commits += 1
            gc_due = (
                self._gc_every_n_commits != 0
                and self._versioned_commits % self._gc_every_n_commits == 0
            )
            cc_reclaim_due = (
                self.cc.tracks_reads
                and self._versioned_commits % SSI_RECLAIM_EVERY_N_COMMITS == 0
            )
        if gc_due:
            self.gc.collect()
        elif cc_reclaim_due:
            self._reclaim_cc_state()
        if trace is not None:
            trace.mark("publish")
            trace.finish("committed")
            self.obs.tracer.record(trace)

    def _reclaim_cc_state(self) -> int:
        """One opportunistic pass over the CC policy's tracking state."""
        return self.cc.reclaim(
            self.oracle.watermark(),
            quiescent=self.oracle.active_count() == 0,
            oldest_active_txn_id=self.oracle.oldest_active_txn_id(),
        )

    # ------------------------------------------------------------------
    # commit stripes
    # ------------------------------------------------------------------

    @property
    def commit_stripe_count(self) -> int:
        """Number of commit stripes the pipeline was configured with."""
        return len(self._commit_stripes)

    def _stripe_index(self, key: EntityKey) -> int:
        return stripe_of(key, len(self._commit_stripes))

    def _commit_stripe_set(
        self, txn: SnapshotTransaction, writes: Dict[EntityKey, Optional[object]]
    ) -> List[int]:
        """Sorted stripe indices a committing transaction must hold.

        Beyond the write set itself this covers the keys validation *reads*:
        the endpoint nodes of created relationships (so a concurrent node
        delete cannot slip between the liveness check and the install) and the
        adjacency candidates of deleted nodes (so a concurrent relationship
        delete on the same node is serialised against the node delete).  A
        relationship created against one of our nodes after this set is
        computed must itself hold the node's stripe, so it serialises with us
        and is re-read by :meth:`_validate_node_delete` under our stripes.
        """
        created = txn.created_keys()
        indices = set()
        for key, payload in writes.items():
            indices.add(self._stripe_index(key))
            if isinstance(payload, RelationshipData) and key in created:
                indices.add(self._stripe_index(EntityKey.node(payload.start_node)))
                indices.add(self._stripe_index(EntityKey.node(payload.end_node)))
            if payload is None and key.kind is EntityKind.NODE:
                for rel_id in self.indexes.adjacency.candidate_rel_ids(key.entity_id):
                    indices.add(self._stripe_index(EntityKey.relationship(rel_id)))
        return sorted(indices)

    @contextlib.contextmanager
    def _acquire_stripes(
        self, indices: List[int], *, count_stats: bool = True
    ) -> Iterator[None]:
        """Hold the given commit stripes, acquired in sorted index order.

        ``count_stats=False`` keeps non-commit callers (the vacuum's
        stop-the-world pause) out of the per-commit contention counters.
        """
        acquired: List[threading.Lock] = []
        waits = 0
        try:
            for index in indices:
                lock = self._commit_stripes[index]
                if not lock.acquire(blocking=False):
                    waits += 1
                    lock.acquire()
                acquired.append(lock)
            if count_stats:
                self.commit_pipeline_stats.record_commit(len(acquired), waits)
            yield
        finally:
            for lock in reversed(acquired):
                lock.release()

    def abort_transaction(self, txn: SnapshotTransaction) -> None:
        """Abort: discard the private write set and release write locks."""
        if txn.safe_snapshot is not None:
            # A rolled-back reader has still handed reads to the caller, so
            # its census entry keeps gating members until they finish.
            self.cc.finish_read_only(txn.safe_snapshot)
        self.cc.finish_transaction(txn.txn_id, txn.cc_record, committed=False)
        self.cc.release_locks(txn.txn_id)
        self.oracle.retire_transaction(txn.txn_id)
        self.stats.record_abort()
        reason = txn.abort_reason or "rollback"
        if reason in self._io_abort_counts:
            with self._counter_lock:
                self._io_abort_counts[reason] += 1
        self.obs.txn_abort_reasons.labels(reason=reason).inc()
        trace = txn.trace
        if trace is not None:
            txn.trace = None
            trace.finish("aborted", reason)
            self.obs.tracer.record(trace)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def read_committed_version(self, key: EntityKey, start_ts: int) -> Optional[object]:
        """The committed state of ``key`` visible at ``start_ts`` (read rule)."""
        entry = self._payload_cache.get(key)
        if entry is not None:
            built_ts, payload = entry
            if built_ts <= start_ts and \
                    self._payload_stamp.get(key, 0) <= built_ts:
                return payload
        chain = self.versions.get_or_load(key, lambda: self._load_persisted(key))
        if chain is None:
            payload = None
        else:
            version = chain.visible_to(start_ts)
            if version is None or version.is_tombstone:
                payload = None
            else:
                payload = version.payload
        self._store_committed_payload(key, start_ts, payload)
        return payload

    def read_committed_versions(
        self, keys: Sequence[EntityKey], start_ts: int
    ) -> List[Optional[object]]:
        """Batch read rule: the committed state of each key, in order.

        One pass collects the resident chains lock-free, one pass resolves
        them against the snapshot — the per-key function-call and
        lambda-allocation overhead of :meth:`read_committed_version` is paid
        only for keys whose chain is not cached.  Thread-safe with no shared
        mutable state, so the vectorized executor's morsel workers call it
        concurrently for disjoint id ranges of the same snapshot.
        """
        cache = self._payload_cache
        stamp = self._payload_stamp
        results: List[Optional[object]] = [None] * len(keys)
        misses: List[int] = []
        miss_keys: List[EntityKey] = []
        for index, key in enumerate(keys):
            entry = cache.get(key)
            if entry is not None:
                built_ts, payload = entry
                if built_ts <= start_ts and stamp.get(key, 0) <= built_ts:
                    results[index] = payload
                    continue
            misses.append(index)
            miss_keys.append(key)
        if not miss_keys:
            return results
        chains = self.versions.get_many(
            miss_keys, lambda key: (lambda: self._load_persisted(key))
        )
        store = self._store_committed_payload
        for index, key, payload in zip(
            misses, miss_keys, resolve_payloads(chains, start_ts)
        ):
            results[index] = payload
            store(key, start_ts, payload)
        return results

    def _store_committed_payload(
        self, key: EntityKey, built_ts: int, payload: Optional[object]
    ) -> None:
        """Publish one resolved payload into the shared read cache."""
        if not self.snapshot_read_cache:
            return
        cache = self._payload_cache
        if key in cache or len(cache) < PAYLOAD_CACHE_LIMIT:
            cache[key] = (built_ts, payload)

    def cached_committed_adjacency(
        self, node_id: int, variant: object, start_ts: int
    ) -> Optional[Sequence[object]]:
        """The shared resolved adjacency of ``node_id`` if valid at ``start_ts``.

        ``variant`` distinguishes the raw committed list (``None``) from
        direction/type-filtered projections of it — all variants share the
        node's validity stamp.  Valid means the entry was built at or before
        this snapshot and no relationship touching the node has committed
        since it was built (see ``_adjacency_payloads``).  Callers that
        track reads (SSI) must not use this — they need the
        per-relationship SIREADs the resolving path registers.
        """
        entry = self._adjacency_payloads.get((node_id, variant))
        if entry is None:
            return None
        built_ts, payloads = entry
        if built_ts <= start_ts and \
                self._adjacency_stamp.get(node_id, 0) <= built_ts:
            return payloads
        return None

    def store_committed_adjacency(
        self, node_id: int, variant: object, built_ts: int,
        payloads: Sequence[object],
    ) -> None:
        """Publish one resolved adjacency list into the shared cache."""
        if not self.snapshot_read_cache:
            return
        cache = self._adjacency_payloads
        key = (node_id, variant)
        if key in cache or len(cache) < ADJACENCY_CACHE_LIMIT:
            cache[key] = (built_ts, payloads)

    def newest_committed_ts(self, key: EntityKey) -> Optional[int]:
        """Commit timestamp of the newest committed version of ``key``."""
        chain = self.versions.get_or_load(key, lambda: self._load_persisted(key))
        if chain is None:
            return None
        newest = chain.newest()
        return newest.commit_ts if newest is not None else None

    def check_write_conflict(self, txn: SnapshotTransaction, key: EntityKey) -> None:
        """Write-time conflict rule, delegated to the concurrency-control policy.

        The newest committed timestamp is passed lazily so the detector reads
        it under the entity's long lock, after any concurrent committer of
        this key has finished installing (see ``ConflictDetector.on_write``).
        """
        self.cc.check_write(
            txn.txn_id,
            txn.start_ts,
            key,
            txn.cc_record,
            lambda: self.newest_committed_ts(key),
        )

    # ------------------------------------------------------------------
    # ids / lifecycle
    # ------------------------------------------------------------------

    def allocate_node_id(self) -> int:
        return self.store.allocate_node_id()

    def allocate_relationship_id(self) -> int:
        return self.store.allocate_relationship_id()

    def close(self) -> None:
        """Run a final garbage-collection pass (the store is closed by the database)."""
        self.gc.collect()

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------

    def run_gc(self) -> GcStats:
        """Run one pass of the threaded-list garbage collector."""
        return self.gc.collect()

    def create_vacuum_collector(self) -> VacuumCollector:
        """A PostgreSQL-style full-scan collector bound to this engine (for E5)."""
        return VacuumCollector(
            self.versions,
            self.oracle,
            self.indexes,
            self.store,
            pause_commits=self.pause_commits,
            cc_policy=self.cc,
        )

    @contextlib.contextmanager
    def pause_commits(self) -> Iterator[None]:
        """Block the commit path while held (used by the stop-the-world vacuum).

        Acquires every commit stripe in index order, so it queues behind (and
        then excludes) all committers regardless of which stripes they use.
        """
        with self._acquire_stripes(
            list(range(len(self._commit_stripes))), count_stats=False
        ):
            self.commit_pipeline_stats.record_pause()
            yield

    # ------------------------------------------------------------------
    # cardinality fast paths (query planner estimates)
    # ------------------------------------------------------------------

    def cardinality_epoch(self) -> int:
        """Current statistics epoch (the plan cache's invalidation key)."""
        return self.stats_epoch.epoch

    def count_nodes_with_label(self, label: str) -> int:
        """Nodes currently carrying ``label`` in O(1) (open-interval counter)."""
        return self.indexes.node_labels.count(label)

    def count_nodes_with_property(self, key: str, value) -> int:
        """Nodes currently holding ``key`` = ``value`` in O(1)."""
        return self.indexes.node_properties.count(key, value)

    def count_relationships_of_type(self, rel_type: str) -> int:
        """Relationships currently of ``rel_type`` in O(1)."""
        return self.indexes.relationship_types.count(rel_type)

    def cardinalities(self) -> Dict[str, Dict[str, int]]:
        """Per-label and per-type current cardinalities (stats surface)."""
        return {
            "node_labels": {
                str(label): count
                for label, count in sorted(
                    self.indexes.node_labels.current_cardinalities().items()
                )
            },
            "relationship_types": {
                str(rel_type): count
                for rel_type, count in sorted(
                    self.indexes.relationship_types.current_cardinalities().items()
                )
            },
        }

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def abort_reasons(self) -> Dict[str, int]:
        """Abort counts broken down by cause (the statistics surface).

        ``ww-conflict`` counts write-rule violations (every detection aborts
        the transaction), ``rw-antidependency`` the SSI dangerous-structure
        aborts (zero under plain snapshot isolation), ``safe-snapshot`` the
        writers aborted to keep a concurrent read-only snapshot safe
        (counted separately so benchmarks can attribute retries),
        ``deadlock`` the lock-wait cycles and timeouts resolved by killing a
        transaction, ``io-error`` the transactions killed by a storage-layer
        failure, and ``degraded-mode`` the writers fenced off after the
        engine entered degraded read-only mode.
        """
        ww_stats = self.cc.ww_conflict_stats()
        with self._counter_lock:
            io_counts = dict(self._io_abort_counts)
        return {
            "ww-conflict": ww_stats["write_time"] + ww_stats["commit_time"],
            "rw-antidependency": self.cc.rw_antidependency_aborts(),
            "safe-snapshot": self.cc.safe_snapshot_aborts(),
            "deadlock": self.locks.stats.deadlocks + self.locks.stats.timeouts,
            "io-error": io_counts["io-error"],
            "degraded-mode": io_counts["degraded-mode"],
        }

    def statistics(self) -> Dict[str, object]:
        """Aggregate statistics used by experiments and the database stats API."""
        return {
            "transactions": dict(
                self.stats.as_dict(), abort_reasons=self.abort_reasons()
            ),
            "concurrency_control": self.cc.statistics(),
            "conflicts": self.cc.ww_conflict_stats(),
            "versions": {
                "chains": self.versions.chain_count(),
                "total_versions": self.versions.total_versions(),
                "multi_version_chains": self.versions.multi_version_chains(),
                "gc_pending": self.gc.pending_versions(),
            },
            "gc": self.gc.total_stats.as_dict(),
            "oracle": {
                "latest_commit_ts": self.oracle.latest_commit_ts,
                "active_transactions": self.oracle.active_count(),
                "watermark": self.oracle.watermark(),
                "pending_commits": self.oracle.pending_commit_count(),
            },
            "commit_pipeline": dict(
                self.commit_pipeline_stats.as_dict(),
                stripes=len(self._commit_stripes),
            ),
            "safe_snapshots": self.cc.safe_snapshot_statistics(),
            "cardinalities": self.cardinalities(),
        }

    # ------------------------------------------------------------------
    # commit internals
    # ------------------------------------------------------------------

    @staticmethod
    def _effective_writes(txn: SnapshotTransaction) -> Dict[EntityKey, Optional[object]]:
        """The write set minus entities created and deleted by the same transaction."""
        created = txn.created_keys()
        return {
            key: payload
            for key, payload in txn.pending_writes().items()
            if not (payload is None and key in created)
        }

    def _validate(
        self, txn: SnapshotTransaction, writes: Dict[EntityKey, Optional[object]]
    ) -> None:
        """Commit-time checks run under the commit mutex.

        Policy validation (first-committer-wins ww-detection and/or the SSI
        dangerous-structure pre-check, depending on the configured policy)
        plus structural checks that keep the persistent store consistent even
        when snapshot isolation alone would allow the interleaving: a
        relationship cannot be created against a node whose deletion has
        already committed, and a node cannot be deleted while a concurrently
        committed relationship still attaches to it.
        """
        created = txn.created_keys()
        self.cc.validate_commit(
            txn.txn_id,
            txn.start_ts,
            txn.cc_record,
            writes,
            created,
            self.newest_committed_ts,
        )
        for key, payload in writes.items():
            if isinstance(payload, RelationshipData) and key in created:
                for node_id in (payload.start_node, payload.end_node):
                    node_key = EntityKey.node(node_id)
                    if node_key in writes and writes[node_key] is not None:
                        continue
                    if node_key in created:
                        continue
                    if not self._alive_in_latest(node_key):
                        raise WriteWriteConflictError(
                            f"transaction {txn.txn_id} creates relationship "
                            f"{payload.rel_id} against node {node_id}, which a "
                            "concurrent transaction has deleted"
                        )
            if payload is None and key.kind is EntityKind.NODE:
                self._validate_node_delete(txn, key, writes)

    def _validate_node_delete(
        self,
        txn: SnapshotTransaction,
        node_key: EntityKey,
        writes: Dict[EntityKey, Optional[object]],
    ) -> None:
        for rel_id in self.indexes.adjacency.candidate_rel_ids(node_key.entity_id):
            rel_key = EntityKey.relationship(rel_id)
            if rel_key in writes and writes[rel_key] is None:
                continue
            if self._alive_in_latest(rel_key):
                raise WriteWriteConflictError(
                    f"transaction {txn.txn_id} deletes node {node_key.entity_id} "
                    f"but relationship {rel_id} still attaches to it in the "
                    "latest committed state"
                )

    def _alive_in_latest(self, key: EntityKey) -> bool:
        """Whether the newest committed version of ``key`` is live (not deleted)."""
        chain = self.versions.get_or_load(key, lambda: self._load_persisted(key))
        if chain is None:
            return False
        newest = chain.newest()
        return newest is not None and not newest.is_tombstone

    def _latest_committed_payload(self, key: EntityKey) -> Optional[object]:
        """Newest committed live payload of ``key`` (``None`` if absent/deleted)."""
        chain = self.versions.get_or_load(key, lambda: self._load_persisted(key))
        if chain is None:
            return None
        newest = chain.newest()
        if newest is None or newest.is_tombstone:
            return None
        return newest.payload

    def _collect_changes(
        self, writes: Dict[EntityKey, Optional[object]]
    ) -> List[Change]:
        """``(key, before, after)`` triples for the CC policy's commit record.

        Computed under the commit stripes (before versions install), where the
        newest committed state of every written key is stable — this is what
        the SSI policy matches reader predicates against.
        """
        return [
            (key, self._latest_committed_payload(key), payload)
            for key, payload in writes.items()
        ]

    def _install_versions(
        self,
        txn: SnapshotTransaction,
        writes: Dict[EntityKey, Optional[object]],
        commit_ts: int,
    ) -> Dict[EntityKey, Optional[object]]:
        """Install committed versions into the chains; returns superseded payloads.

        Installs go through :meth:`VersionStore.install_committed`, which runs
        under the key's stripe lock and re-inserts the chain — never through
        the lock-free read hit path, whose un-promoted chains can be evicted
        mid-install (see that method's docstring).
        """
        old_states: Dict[EntityKey, Optional[object]] = {}
        payload_stamp = self._payload_stamp
        for key, payload in writes.items():
            # Invalidate the shared resolved-payload cache for this key.
            # This runs before the commit is published, so no snapshot that
            # can see the new version validates a stale entry.
            payload_stamp[key] = commit_ts
            version = Version(key, payload, commit_ts)
            superseded = self.versions.install_committed(
                key, version, lambda k=key: self._load_persisted(k)
            )
            old_states[key] = (
                superseded.payload
                if superseded is not None and not superseded.is_tombstone
                else None
            )
            if superseded is not None:
                self.gc.version_superseded(superseded, commit_ts)
            if version.is_tombstone:
                self.gc.tombstone_installed(version)
        return old_states

    def _revert_installs(
        self,
        writes: Dict[EntityKey, Optional[object]],
        old_states: Dict[EntityKey, Optional[object]],
        commit_ts: int,
    ) -> None:
        """Unwind version installs and index deltas after a failed durable apply.

        Index deltas are cancelled by applying the inverse change at the same
        timestamp, which collapses the membership interval to the empty
        ``[ts, ts)``.  The written chains are dropped outright rather than
        surgically trimmed: readers rebuild them from the page store, which
        reflects exactly the durably applied batches.  GC-list entries
        registered by the forward install are left behind on purpose — the
        reclaim pass tolerates versions whose chain no longer holds them.
        """
        stamp = self._adjacency_stamp
        payload_stamp = self._payload_stamp
        for key, payload in writes.items():
            old_state = old_states.get(key)
            payload_stamp[key] = commit_ts
            if key.kind is EntityKind.NODE:
                self.indexes.apply_node_change(payload, old_state, commit_ts)
            else:
                self.indexes.apply_relationship_change(payload, old_state, commit_ts)
                state = payload if payload is not None else old_state
                if state is not None:
                    stamp[state.start_node] = commit_ts
                    stamp[state.end_node] = commit_ts
            self.versions.remove_chain(key)

    def _update_indexes(
        self,
        writes: Dict[EntityKey, Optional[object]],
        old_states: Dict[EntityKey, Optional[object]],
        commit_ts: int,
    ) -> None:
        stamp = self._adjacency_stamp
        for key, payload in writes.items():
            old_state = old_states.get(key)
            if key.kind is EntityKind.NODE:
                self.indexes.apply_node_change(old_state, payload, commit_ts)
            else:
                self.indexes.apply_relationship_change(old_state, payload, commit_ts)
                # Any relationship change (create, delete, property update)
                # invalidates both endpoints' cached adjacency lists.  This
                # runs before the commit is published, so no snapshot that
                # can see the change validates a stale entry.
                state = payload if payload is not None else old_state
                if state is not None:
                    stamp[state.start_node] = commit_ts
                    stamp[state.end_node] = commit_ts

    def _build_store_operations(
        self, writes: Dict[EntityKey, Optional[object]], commit_ts: int
    ) -> List[StoreOperation]:
        """Persist only the newest committed version of each written entity."""
        node_writes: List[StoreOperation] = []
        rel_writes: List[StoreOperation] = []
        rel_deletes: List[StoreOperation] = []
        node_deletes: List[StoreOperation] = []
        for key, payload in writes.items():
            if key.kind is EntityKind.NODE:
                if payload is None:
                    node_deletes.append(DeleteNodeOp(key.entity_id))
                else:
                    node_writes.append(
                        WriteNodeOp(payload.with_property(COMMIT_TS_PROPERTY, commit_ts))
                    )
            else:
                if payload is None:
                    rel_deletes.append(DeleteRelationshipOp(key.entity_id))
                else:
                    rel_writes.append(
                        WriteRelationshipOp(
                            payload.with_property(COMMIT_TS_PROPERTY, commit_ts)
                        )
                    )
        return node_writes + rel_writes + rel_deletes + node_deletes

    # ------------------------------------------------------------------
    # persistence helpers
    # ------------------------------------------------------------------

    def _load_persisted(self, key: EntityKey) -> Optional[Tuple[object, int]]:
        """Load an entity from the store, stripping the reserved SI properties."""
        if key.kind is EntityKind.NODE:
            data = self.store.read_node(key.entity_id)
        else:
            data = self.store.read_relationship(key.entity_id)
        if data is None:
            return None
        commit_ts = data.properties.get(COMMIT_TS_PROPERTY, 0)
        clean_props = {
            prop_key: value
            for prop_key, value in data.properties.items()
            if not prop_key.startswith(RESERVED_PROPERTY_PREFIX)
        }
        return data.with_properties(clean_props), int(commit_ts)

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------

    def _bootstrap_indexes(self) -> None:
        """Build the multi-versioned indexes from the persistent store.

        Pre-existing entities are indexed with the commit timestamp persisted
        in their reserved property (zero for data loaded outside the SI
        engine), and the oracle is fast-forwarded past the largest persisted
        timestamp so that new snapshots cover everything already on disk.
        """
        max_persisted_ts = 0
        for node in self.store.iter_nodes():
            loaded = self._load_persisted(EntityKey.node(node.node_id))
            if loaded is None:
                continue
            clean, commit_ts = loaded
            max_persisted_ts = max(max_persisted_ts, commit_ts)
            self.indexes.apply_node_change(None, clean, commit_ts)
        for relationship in self.store.iter_relationships():
            loaded = self._load_persisted(EntityKey.relationship(relationship.rel_id))
            if loaded is None:
                continue
            clean, commit_ts = loaded
            max_persisted_ts = max(max_persisted_ts, commit_ts)
            self.indexes.apply_relationship_change(None, clean, commit_ts)
        if max_persisted_ts:
            self.oracle.advance_to(max_persisted_ts)
