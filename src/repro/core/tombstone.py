"""Tombstone helpers.

Section 4 of the paper: "Another property has been added to indicate if a
data item has been deleted.  A deleted data item has to be kept till no
previous version can be read by an active transaction.  This mechanism is
also called tombstone versions."

In this implementation a tombstone is simply a :class:`~repro.core.version.Version`
whose payload is ``None``; these helpers exist to keep that convention in one
place and to answer the retention question GC asks about deleted entities.
"""

from __future__ import annotations

from typing import Optional

from repro.core.version import Version, VersionChain
from repro.graph.entity import EntityKey


def make_tombstone(key: EntityKey, commit_ts: int) -> Version:
    """Create a tombstone version for ``key`` committed at ``commit_ts``."""
    return Version(key=key, payload=None, commit_ts=commit_ts)


def is_tombstone(version: Optional[Version]) -> bool:
    """Whether ``version`` marks a deletion (``None`` counts as "no version")."""
    return version is not None and version.is_tombstone


def chain_fully_deleted(chain: VersionChain, watermark: int) -> bool:
    """Whether the entity is deleted and no active snapshot can still see it.

    True when the newest version is a tombstone whose commit timestamp is at
    or below the watermark — at that point the tombstone and any remaining
    older versions can all be purged and the entity forgotten entirely.
    """
    newest = chain.newest()
    if newest is None or not newest.is_tombstone:
        return False
    return newest.commit_ts <= watermark
