"""Snapshot isolation for the graph store — the paper's contribution.

The modules in this package implement the multi-version concurrency control
described in Sections 3 and 4 of *"Snapshot Isolation for Neo4j"*:

* :mod:`repro.core.timestamps` — start / commit timestamp oracle and the
  active-transaction watermark used by garbage collection,
* :mod:`repro.core.snapshot` — the snapshot descriptor handed to each
  transaction,
* :mod:`repro.core.version` — versions and per-entity version chains stored
  in the object cache,
* :mod:`repro.core.visibility` — the read rule (latest commit timestamp not
  newer than the reader's start timestamp),
* :mod:`repro.core.conflict` — the write rule (first-updater-wins, with
  first-committer-wins available for the ablation experiment),
* :mod:`repro.core.cc_policy` — the pluggable concurrency-control policies
  (SI write rule, 2PL no-op, and Serializable Snapshot Isolation with
  SIREAD/predicate-read tracking),
* :mod:`repro.core.tombstone` — tombstone helpers for deleted entities,
* :mod:`repro.core.versioned_index` — multi-versioned label / property /
  type indexes and the adjacency map,
* :mod:`repro.core.versioned_iterator` — the enriched store iterator that
  merges cached versions and the transaction's own writes,
* :mod:`repro.core.gc` — the timestamp-sorted, doubly-linked garbage
  collection list and the collector that walks only reclaimable versions,
* :mod:`repro.core.vacuum` — a PostgreSQL-style full-scan vacuum used as the
  garbage-collection baseline,
* :mod:`repro.core.si_transaction` / :mod:`repro.core.si_manager` — the
  transaction object and the engine tying everything together.
"""

from repro.core.cc_policy import (
    ConcurrencyControlPolicy,
    SerializableSnapshotPolicy,
    SnapshotWriteRulePolicy,
    TwoPhaseLockingPolicy,
)
from repro.core.conflict import ConflictPolicy
from repro.core.gc import GarbageCollector, GcStats, ThreadedVersionList
from repro.core.si_manager import SnapshotIsolationEngine
from repro.core.si_transaction import SnapshotTransaction
from repro.core.snapshot import Snapshot
from repro.core.timestamps import TimestampOracle
from repro.core.vacuum import VacuumCollector
from repro.core.version import Version, VersionChain
from repro.core.version_store import VersionStore

__all__ = [
    "ConcurrencyControlPolicy",
    "ConflictPolicy",
    "GarbageCollector",
    "GcStats",
    "SerializableSnapshotPolicy",
    "SnapshotWriteRulePolicy",
    "TwoPhaseLockingPolicy",
    "Snapshot",
    "SnapshotIsolationEngine",
    "SnapshotTransaction",
    "ThreadedVersionList",
    "TimestampOracle",
    "VacuumCollector",
    "Version",
    "VersionChain",
    "VersionStore",
]
