"""Pluggable concurrency-control policies.

The transaction kernel used to hard-wire its conflict handling: the
read-committed engine leaned entirely on two-phase locking, and the
snapshot-isolation engine called the write-rule :class:`ConflictDetector`
directly from its commit path.  This module turns concurrency control into a
*strategy* the engine is configured with:

* :class:`TwoPhaseLockingPolicy` — the no-op policy for the read-committed
  engine, where the lock manager already prevents every conflict the level
  promises to prevent;
* :class:`SnapshotWriteRulePolicy` — the paper's snapshot-isolation write
  rule (first-updater-wins via long write locks, or first-committer-wins at
  validation), hosting the :class:`~repro.core.conflict.ConflictDetector`
  that previously lived loose inside the engine; and
* :class:`SerializableSnapshotPolicy` — Serializable Snapshot Isolation
  (Cahill et al., SIGMOD 2008): snapshot isolation plus tracking of
  rw-antidependencies through SIREAD-style read registrations, aborting a
  transaction whenever committing it would complete a *dangerous structure*
  (two consecutive rw-edges whose pivot cannot be aborted any more).

The SSI tracker works on three registries, all guarded by one mutex so the
reader-side and writer-side checks are pairwise atomic (whichever of the two
critical sections runs second is guaranteed to observe the other's
registration — the store/load ordering that makes the edge detection
race-free without putting locks on the MVCC read path itself):

* ``sireads``: entity key -> records that point-read it (fed by
  :meth:`~repro.core.si_transaction.SnapshotTransaction._resolve_committed`,
  which covers point reads, adjacency expansions and index lookups);
* ``predicates``: per-record predicate reads (label scans, property
  lookups, relationship-type scans, whole-store iterations, adjacency
  expansions) against which committed changes are matched for phantoms; and
* a ``write registry`` plus ``commit log`` of recently committed changes,
  consulted by *readers* so an edge is found no matter which side finishes
  registering first.

Read-only transactions are the paper's — and PostgreSQL's — fast path: they
register nothing, cost nothing, and can never be aborted, because a
transaction without writes can never be the pivot of a dangerous structure.
The one residual gap of that optimisation — the Fekete read-only-transaction
anomaly — is closed by **safe snapshots**: a read-only transaction's begin
censuses the read-write transactions in flight at its snapshot grant, and
until every one of them finishes the snapshot is *pending*.  A census member
trying to commit with an rw-antidependency out to a transaction that
committed before the pending snapshot (the provable precondition of any
anomaly the reader could observe) is aborted with
:class:`~repro.errors.UnsafeSnapshotError` — the reader itself is *never*
aborted.  Deferrable readers instead block at begin and retake their
snapshot until a safe one is available, then run completely untracked.

Entries of committed transactions are retained only while a concurrent
transaction could still form an edge with them; :meth:`reclaim` (driven by
the garbage collector with the snapshot watermark) drops everything older.
"""

from __future__ import annotations

import abc
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.conflict import ConflictDetector, ConflictPolicy
from repro.errors import SerializationError, UnsafeSnapshotError
from repro.graph.entity import EntityKey, NodeData, RelationshipData
from repro.index.property_index import hashable_value
from repro.locking.lock_manager import LockManager

#: A committed change: (key, state before the commit, state after it).
Change = Tuple[EntityKey, Optional[object], Optional[object]]

#: A predicate read, as registered by the transaction read path.
#: First element is the predicate kind; the rest parameterise it.
Predicate = Tuple


class SsiTransactionRecord:
    """Per-transaction SSI bookkeeping (Cahill's ``inConflict``/``outConflict``).

    ``in_conflict`` means some concurrent transaction has an rw-antidependency
    edge *into* this one (it read a version this transaction overwrote);
    ``out_conflict`` the reverse.  A transaction carrying both is the pivot of
    a dangerous structure and must not commit.  ``doomed`` marks an active
    pivot chosen as the victim by another transaction's commit; it aborts at
    its next interaction with the policy.
    """

    __slots__ = (
        "txn_id",
        "start_ts",
        "commit_ts",
        "finish_seq",
        "committed",
        "finished",
        "doomed",
        "read_only",
        "in_conflict",
        "out_conflict",
        "out_commit_ts",
        "read_keys",
        "predicates",
    )

    def __init__(self, txn_id: int, start_ts: int, *, read_only: bool = False) -> None:
        self.txn_id = txn_id
        self.start_ts = start_ts
        self.commit_ts: Optional[float] = None
        #: For writeless commits: newest transaction id issued when this
        #: record finished.  A transaction whose id exceeds it began after
        #: this record finished and can never overlap it.
        self.finish_seq: Optional[int] = None
        self.committed = False
        self.finished = False
        self.doomed = False
        #: Read-only records (safe-snapshot readers upgraded to tracking)
        #: write nothing: they can never carry ``in_conflict``, never become
        #: a pivot, and are never aborted — the safe-snapshot gate aborts
        #: the threatening *writer* instead.
        self.read_only = read_only
        self.in_conflict = False
        self.out_conflict = False
        #: Earliest commit timestamp among this record's *committed*
        #: rw-antidependency out-partners (the transactions that overwrote
        #: something this record read).  This is what the safe-snapshot gate
        #: compares against pending read-only snapshots: an anomaly a
        #: read-only transaction could observe requires a concurrent writer
        #: committing with an out-edge to a transaction that committed
        #: *before* the reader's snapshot.
        self.out_commit_ts: Optional[float] = None
        self.read_keys: Set[EntityKey] = set()
        self.predicates: Set[Predicate] = set()

    def concurrent_at(self, other_start_ts: float) -> bool:
        """Whether this (finished) record overlapped a transaction that
        started at ``other_start_ts`` (an active record always overlaps)."""
        if not self.finished:
            return True
        return self.commit_ts is not None and self.commit_ts > other_start_ts


#: Sentinel returned by :meth:`ConcurrencyControlPolicy.begin_read_only` when
#: the snapshot just granted is *already* unsafe — a census member committed
#: (but has not yet published) carrying an out-edge to something that
#: committed before this snapshot.  Nothing can be aborted to repair that, so
#: the engine must retire the transaction and take a fresh snapshot.
RETAKE_SNAPSHOT = object()


class SafeSnapshotStats:
    """Counters for the read-only safe-snapshot machinery."""

    __slots__ = (
        "immediate",
        "tracked",
        "became_safe",
        "waits",
        "retakes",
        "upgrades",
        "writer_aborts",
    )

    def __init__(self) -> None:
        #: Read-only begins whose census was empty: safe from birth, zero cost.
        self.immediate = 0
        #: Read-only begins that had to be tracked until their census drained.
        self.tracked = 0
        #: Tracked snapshots whose census drained without a dangerous commit.
        self.became_safe = 0
        #: Deferrable begins that blocked waiting for a safe snapshot.
        self.waits = 0
        #: Snapshots retaken (deferrable unsafe wake-ups + unsafe-at-birth).
        self.retakes = 0
        #: Pending readers upgraded to full SIREAD tracking.
        self.upgrades = 0
        #: Writers aborted because committing would have exposed the
        #: read-only-transaction anomaly to a pending reader.
        self.writer_aborts = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "immediate": self.immediate,
            "tracked": self.tracked,
            "became_safe": self.became_safe,
            "waits": self.waits,
            "retakes": self.retakes,
            "upgrades": self.upgrades,
            "writer_aborts": self.writer_aborts,
        }


class PendingSafeSnapshot:
    """One read-only snapshot waiting to be proven safe.

    Holds the census of read-write transactions that were in flight when the
    snapshot was granted.  The snapshot is *safe* once every member has
    finished without committing an rw-antidependency out to a transaction
    that committed before this snapshot (the precondition of the Fekete
    read-only-transaction anomaly).  Until then:

    * a **deferrable** reader blocks on :attr:`event` before performing any
      read, and retakes its snapshot if a member commits dangerously;
    * a **non-deferrable** reader proceeds immediately, buffering its reads
      into :attr:`record`; a member that tries to commit dangerously is
      aborted on the reader's behalf (the reader itself is never aborted)
      and the reader upgrades to full SIREAD tracking.

    The entry outlives the reader: a reader that finishes while members are
    still running has already handed results to the application, so those
    members stay gated until they finish.
    """

    __slots__ = (
        "txn_id",
        "start_ts",
        "census",
        "deferrable",
        "record",
        "upgrade_required",
        "upgraded",
        "safe",
        "event",
    )

    def __init__(
        self, txn_id: int, start_ts: int, census: Set[int], *, deferrable: bool
    ) -> None:
        self.txn_id = txn_id
        self.start_ts = start_ts
        self.census = census
        self.deferrable = deferrable
        #: Local buffer of the reader's reads (registered only on upgrade).
        #: Mutated exclusively by the reader's own thread until then.
        self.record = SsiTransactionRecord(txn_id, start_ts, read_only=True)
        self.upgrade_required = False
        self.upgraded = False
        #: Set (before :attr:`event`) when the census drained without a
        #: dangerous commit; a woken waiter finding it False must retake.
        self.safe = False
        self.event = threading.Event()


class ConcurrencyControlPolicy(abc.ABC):
    """Strategy interface the transaction engines program against.

    Engines call the hooks at fixed points of the transaction lifecycle;
    policies that do not care about a hook inherit the no-op.  ``tracks_reads``
    tells the transaction layer whether the read path must register reads at
    all — the flag keeps the snapshot-isolation fast path at a single
    attribute test per read.
    """

    name: str = "abstract"
    tracks_reads: bool = False

    def begin_transaction(
        self, txn_id: int, start_ts: int, *, read_only: bool = False
    ) -> Optional[SsiTransactionRecord]:
        """Register a starting transaction; returns its tracking record, if any."""
        return None

    def begin_read_only(
        self,
        txn_id: int,
        start_ts: int,
        rw_census: Iterable[int],
        *,
        deferrable: bool = False,
    ) -> object:
        """Register a read-only transaction with its snapshot-time census.

        Returns ``None`` when the snapshot is safe from birth (the common
        case, and always for policies without safe-snapshot gating), a
        :class:`PendingSafeSnapshot` handle while the snapshot must be
        tracked, or :data:`RETAKE_SNAPSHOT` when the engine must retire the
        transaction and take a fresh snapshot.
        """
        return None

    def wait_for_safe_snapshot(
        self, handle: "PendingSafeSnapshot", timeout: Optional[float] = None
    ) -> bool:
        """Block until ``handle`` resolves; True if it resolved safe."""
        return True

    def upgrade_reader(self, handle: "PendingSafeSnapshot") -> None:
        """Promote a pending reader's buffered reads to full SIREAD tracking."""

    def finish_read_only(self, handle: "PendingSafeSnapshot") -> None:
        """Close out a tracked read-only transaction (its entry may outlive it)."""

    def safe_snapshot_aborts(self) -> int:
        """Writers aborted to protect a pending read-only snapshot."""
        return 0

    def safe_snapshot_statistics(self) -> Dict[str, int]:
        """Safe-snapshot counters (zeros for policies without the machinery)."""
        return dict(SafeSnapshotStats().as_dict(), pending=0)

    def check_write(
        self,
        txn_id: int,
        start_ts: int,
        key: EntityKey,
        record: Optional[SsiTransactionRecord],
        read_newest_committed_ts: Callable[[], Optional[int]],
    ) -> None:
        """Write-time conflict rule (first write of ``key`` by the transaction)."""

    def register_point_read(self, record: SsiTransactionRecord, key: EntityKey) -> None:
        """Record that ``record`` read the committed state of ``key``."""

    def register_point_reads(
        self, record: SsiTransactionRecord, keys: Sequence[EntityKey]
    ) -> None:
        """Batch form of :meth:`register_point_read` (one call per read batch).

        Policies with a tracker mutex override this so a whole batch pays a
        single acquisition; the default simply loops.
        """
        for key in keys:
            self.register_point_read(record, key)

    def register_predicate_read(
        self, record: SsiTransactionRecord, predicate: Predicate
    ) -> None:
        """Record that ``record`` evaluated a predicate over committed state."""

    def register_predicate_reads(
        self, record: SsiTransactionRecord, predicates: Sequence[Predicate]
    ) -> None:
        """Batch form of :meth:`register_predicate_read`."""
        for predicate in predicates:
            self.register_predicate_read(record, predicate)

    def validate_commit(
        self,
        txn_id: int,
        start_ts: int,
        record: Optional[SsiTransactionRecord],
        writes: Dict[EntityKey, Optional[object]],
        created: Set[EntityKey],
        newest_committed_ts: Callable[[EntityKey], Optional[int]],
    ) -> None:
        """Commit-time validation, run under the engine's commit stripes."""

    def record_commit(
        self,
        record: Optional[SsiTransactionRecord],
        changes: Sequence[Change],
        commit_ts: int,
    ) -> None:
        """Publish a commit to the policy *before* versions install.

        May raise :class:`SerializationError` to abort the committer while
        nothing has been installed yet.
        """

    def finish_transaction(
        self,
        txn_id: int,
        record: Optional[SsiTransactionRecord],
        *,
        committed: bool,
        visible_ts: int = 0,
        finish_seq: int = 0,
    ) -> None:
        """Close out a transaction that did not pass through :meth:`record_commit`
        (read-only / no-write commits and aborts).  ``visible_ts`` is the
        newest published commit timestamp at finish time; ``finish_seq`` the
        newest transaction id issued by then."""

    def release_locks(self, txn_id: int) -> None:
        """Release every lock the policy acquired for the transaction."""

    def reclaim(
        self,
        watermark: int,
        *,
        quiescent: bool = False,
        oldest_active_txn_id: Optional[int] = None,
    ) -> int:
        """Drop tracking state no active snapshot can still need.

        ``quiescent`` means no transaction is active at all, so every finished
        record is reclaimable regardless of timestamps; ``oldest_active_txn_id``
        lets writeless committed records (which never fall below the commit-
        timestamp watermark on their own) be dropped once every active
        transaction began after they finished.  Returns the number of entries
        dropped (records, SIREAD entries, registry rows).
        """
        return 0

    def rw_antidependency_aborts(self) -> int:
        """Number of aborts this policy issued for rw-antidependency cycles."""
        return 0

    def ww_conflict_stats(self) -> Dict[str, int]:
        """Write-write conflict detections, by phase (zeros for lock-based CC).

        Part of the interface so the engine statistics surface works for any
        injected policy, not only those hosting a ``ConflictDetector``.
        """
        return {"write_time": 0, "commit_time": 0}

    def statistics(self) -> Dict[str, object]:
        """Policy-specific counters for the engine statistics surface."""
        return {"policy": self.name}


class TwoPhaseLockingPolicy(ConcurrencyControlPolicy):
    """The read-committed engine's policy: conflict prevention is the lock
    manager's job, so every hook is a no-op.

    Existing behaviour is unchanged — short read locks and long write locks
    already serialise conflicting accesses, and the anomalies read committed
    permits are permitted on purpose.  The policy object exists so the engine
    abstraction is uniform and the statistics surface (abort reasons, policy
    name) has one shape across isolation levels.
    """

    name = "2pl"

    def __init__(self, lock_manager: Optional[LockManager] = None) -> None:
        self.locks = lock_manager

    def release_locks(self, txn_id: int) -> None:
        if self.locks is not None:
            self.locks.release_all(txn_id)


class SnapshotWriteRulePolicy(ConcurrencyControlPolicy):
    """Snapshot isolation's write rule, extracted from the SI engine.

    Hosts the :class:`~repro.core.conflict.ConflictDetector` (first-updater-
    wins on the long write locks, or first-committer-wins at validation) that
    the engine used to call directly; the engine now only talks to the policy
    interface, which is what makes the SSI policy drop-in below.
    """

    name = "si-write-rule"

    def __init__(
        self,
        lock_manager: LockManager,
        conflict_policy: ConflictPolicy = ConflictPolicy.FIRST_UPDATER_WINS,
    ) -> None:
        self.detector = ConflictDetector(lock_manager, conflict_policy)

    @property
    def conflict_policy(self) -> ConflictPolicy:
        """The write-write policy (first-updater-wins / first-committer-wins)."""
        return self.detector.policy

    def check_write(
        self,
        txn_id: int,
        start_ts: int,
        key: EntityKey,
        record: Optional[SsiTransactionRecord],
        read_newest_committed_ts: Callable[[], Optional[int]],
    ) -> None:
        self.detector.on_write(txn_id, start_ts, key, read_newest_committed_ts)

    def validate_commit(
        self,
        txn_id: int,
        start_ts: int,
        record: Optional[SsiTransactionRecord],
        writes: Dict[EntityKey, Optional[object]],
        created: Set[EntityKey],
        newest_committed_ts: Callable[[EntityKey], Optional[int]],
    ) -> None:
        for key in writes:
            if key not in created:
                self.detector.validate_at_commit(
                    txn_id, start_ts, key, newest_committed_ts(key)
                )

    def release_locks(self, txn_id: int) -> None:
        self.detector.release_locks(txn_id)

    def ww_conflict_stats(self) -> Dict[str, int]:
        return {
            "write_time": self.detector.stats.write_time_conflicts,
            "commit_time": self.detector.stats.commit_time_conflicts,
        }

    def statistics(self) -> Dict[str, object]:
        return {
            "policy": self.name,
            "conflict_policy": self.detector.policy.value,
        }


# ---------------------------------------------------------------------------
# Serializable Snapshot Isolation
# ---------------------------------------------------------------------------


class _CommitLogEntry:
    """One committed transaction's changes, kept for reader-side matching."""

    __slots__ = ("commit_ts", "record", "changes")

    def __init__(self, commit_ts: int, record: SsiTransactionRecord,
                 changes: Tuple[Change, ...]) -> None:
        self.commit_ts = commit_ts
        self.record = record
        self.changes = changes


def predicate_matches(predicate: Predicate, state: Optional[object]) -> bool:
    """Whether an entity state is a member of a predicate's result set."""
    if state is None:
        return False
    kind = predicate[0]
    if kind == "label":
        return isinstance(state, NodeData) and predicate[1] in state.labels
    if kind == "node_prop":
        return (
            isinstance(state, NodeData)
            and predicate[1] in state.properties
            and hashable_value(state.properties[predicate[1]]) == predicate[2]
        )
    if kind == "rel_prop":
        return (
            isinstance(state, RelationshipData)
            and predicate[1] in state.properties
            and hashable_value(state.properties[predicate[1]]) == predicate[2]
        )
    if kind == "rel_type":
        return isinstance(state, RelationshipData) and state.rel_type == predicate[1]
    if kind == "all_nodes":
        return isinstance(state, NodeData)
    if kind == "all_rels":
        return isinstance(state, RelationshipData)
    if kind == "adjacency":
        return isinstance(state, RelationshipData) and state.touches(predicate[1])
    raise ValueError(f"unknown predicate kind {kind!r}")


def predicate_membership_changed(
    predicate: Predicate, old: Optional[object], new: Optional[object]
) -> bool:
    """Whether a committed change moved an entity into or out of a predicate.

    Only membership changes matter: a change that leaves an entity inside the
    predicate's result set (say, an unrelated property update on a node the
    reader's label scan returned) is already covered by the point-read SIREAD
    the reader registered when it resolved the entity itself.
    """
    return predicate_matches(predicate, old) != predicate_matches(predicate, new)


class SerializableSnapshotPolicy(SnapshotWriteRulePolicy):
    """Serializable Snapshot Isolation on top of the SI write rule.

    Essential serialization-graph fact (Fekete et al.): every non-serializable
    execution permitted by snapshot isolation contains a *dangerous structure*
    — two consecutive rw-antidependency edges ``T1 -rw-> T2 -rw-> T3`` between
    pairwise-concurrent transactions.  Aborting some transaction of every
    dangerous structure therefore guarantees serializability.  Like Cahill's
    implementation we keep one ``in_conflict``/``out_conflict`` flag pair per
    transaction rather than the full graph, and abort conservatively:

    * a transaction that would carry both flags (the pivot ``T2``) aborts
      itself if it is the one acting,
    * an *active* pivot discovered from another transaction's commit is marked
      ``doomed`` and aborts at its next policy interaction, and
    * when the pivot has already *committed* — it cannot be aborted — the
      acting transaction aborts instead, which is exactly the "committed
      pivot" case of the issue's dangerous-structure rule.

    False positives (flags that outlive an aborted partner) only ever cause
    extra aborts, never a missed anomaly; applications retry through
    ``db.run_transaction``.
    """

    name = "ssi"
    tracks_reads = True

    def __init__(
        self,
        lock_manager: LockManager,
        conflict_policy: ConflictPolicy = ConflictPolicy.FIRST_UPDATER_WINS,
        *,
        safe_snapshots: bool = True,
    ) -> None:
        super().__init__(lock_manager, conflict_policy)
        #: Safe-snapshot gating for read-only transactions (PostgreSQL-style).
        #: Disabling it restores the bare read-only optimisation, which
        #: admits the Fekete read-only-transaction anomaly — kept as a knob
        #: so the anomaly is reproducible on demand by the test harness.
        self.safe_snapshots = safe_snapshots
        self._mutex = threading.Lock()
        #: The safe-snapshot tracker has its own mutex so read-only begins
        #: and finishes never contend with the (SIREAD-heavy) main tracker
        #: mutex.  Lock order where both are needed: ``_mutex`` first,
        #: ``_safe_mutex`` nested — never the other way around.
        self._safe_mutex = threading.Lock()
        self._safe_stats = SafeSnapshotStats()
        #: Pending read-only snapshots by reader txn id.  An entry lives
        #: until its census drains, even if the reader finished first: a
        #: reader that already returned results keeps its census members
        #: gated until they finish.
        self._pending_safe: Dict[int, PendingSafeSnapshot] = {}
        #: Read-write transactions the policy has seen finish, mapped to the
        #: earliest committed out-partner timestamp they finished with
        #: (``None`` when harmless: aborted, writeless, or no out-edge).
        #: Consulted when filtering an oracle census (the oracle retires
        #: transactions slightly later than the policy sees them finish);
        #: pruned by :meth:`reclaim` below the oldest active transaction id.
        self._finished_rw: Dict[int, Optional[float]] = {}
        #: Every pruned finish record had an id below this floor.  A census
        #: member below the floor with no finish record is ambiguous — it
        #: finished, but whether it committed dangerously was pruned — so
        #: the reader retakes its snapshot (see :meth:`begin_read_only`).
        #: A still-active member can never sit below the floor: pruning
        #: only drops ids beneath the oldest active transaction.
        self._finished_floor = 0
        #: Active and recently-committed tracked transactions by id.
        self._records: Dict[int, SsiTransactionRecord] = {}
        #: entity key -> records holding a SIREAD on it.
        self._sireads: Dict[EntityKey, Set[SsiTransactionRecord]] = {}
        #: Records with at least one registered predicate read.
        self._predicate_readers: Set[SsiTransactionRecord] = set()
        #: entity key -> [(commit_ts, committed writer record)].
        self._write_registry: Dict[EntityKey, List[Tuple[int, SsiTransactionRecord]]] = {}
        #: Recently committed change sets, for reader-side predicate checks.
        self._commit_log: List[_CommitLogEntry] = []
        #: Lifetime counters.
        self._rw_aborts = 0
        self._edges_observed = 0
        self._doomed_marked = 0
        self._entries_reclaimed = 0

    # -- lifecycle -----------------------------------------------------------

    def begin_transaction(
        self, txn_id: int, start_ts: int, *, read_only: bool = False
    ) -> Optional[SsiTransactionRecord]:
        if read_only:
            # The read-only optimisation: no SIREADs, no record, no aborts.
            # A transaction without writes can never be the pivot of a
            # dangerous structure, so among the read-write transactions
            # serializability needs nothing from it.  The one residual gap —
            # the Fekete read-only-transaction anomaly — is closed by the
            # safe-snapshot gate (:meth:`begin_read_only`); engines route
            # read-only serializable begins through that entry point.
            return None
        record = SsiTransactionRecord(txn_id, start_ts)
        with self._mutex:
            self._records[txn_id] = record
        return record

    # -- safe snapshots for read-only transactions -----------------------------

    def begin_read_only(
        self,
        txn_id: int,
        start_ts: int,
        rw_census: Iterable[int],
        *,
        deferrable: bool = False,
    ) -> object:
        """Census the in-flight read-write transactions for a new reader.

        Returns ``None`` when no read-write transaction was live at the
        snapshot grant (the snapshot is safe from birth and the reader runs
        the free untracked path), a :class:`PendingSafeSnapshot` handle
        otherwise, or :data:`RETAKE_SNAPSHOT` when a census member already
        committed dangerously but has not yet published — the one window
        where neither the reader nor the writer can be protected, so the
        reader must take a fresh snapshot (the publish completes within the
        committer's critical section, making the retake loop short).
        """
        if not self.safe_snapshots:
            return None
        missing = object()
        with self._safe_mutex:
            live: Set[int] = set()
            for member in rw_census:
                finished_out_ts = self._finished_rw.get(member, missing)
                if finished_out_ts is missing:
                    if member < self._finished_floor:
                        # Finished between the oracle census and this
                        # registration, with its finish record already
                        # pruned: whether it was dangerous is unknowable,
                        # so take a fresh snapshot (by then the member is
                        # out of the oracle's active set).
                        self._safe_stats.retakes += 1
                        return RETAKE_SNAPSHOT
                    # Still in flight as far as the policy knows: a genuine
                    # census member (its commits will be gated).
                    live.add(member)
                elif finished_out_ts is not None and finished_out_ts <= start_ts:
                    # Committed with a dangerous out-edge but not yet
                    # published (else the snapshot would cover its writes
                    # and no rw-edge out of the reader could form): nothing
                    # can be aborted to protect this snapshot any more.
                    self._safe_stats.retakes += 1
                    return RETAKE_SNAPSHOT
            if not live:
                self._safe_stats.immediate += 1
                return None
            handle = PendingSafeSnapshot(
                txn_id, start_ts, live, deferrable=deferrable
            )
            self._pending_safe[txn_id] = handle
            self._safe_stats.tracked += 1
            return handle

    def wait_for_safe_snapshot(
        self, handle: PendingSafeSnapshot, timeout: Optional[float] = None
    ) -> bool:
        """Block a deferrable reader until its snapshot resolves."""
        with self._safe_mutex:
            self._safe_stats.waits += 1
        handle.event.wait(timeout)
        return handle.safe

    def upgrade_reader(self, handle: PendingSafeSnapshot) -> None:
        """Promote a pending reader to full SIREAD tracking.

        Registers the reads the reader buffered while untracked and turns on
        live registration for everything it reads from here on, so later
        committers conflict-check against the reader's actual read set.  The
        reader's own thread is the only mutator of the buffer, and it is the
        caller, so the bulk registration is race-free under the mutex.
        Edges found here never abort the reader (see :meth:`_note_edge`).
        """
        record = handle.record
        with self._mutex:
            if handle.upgraded:
                return
            handle.upgraded = True
            with self._safe_mutex:
                self._safe_stats.upgrades += 1
            self._records[record.txn_id] = record
            for key in record.read_keys:
                self._sireads.setdefault(key, set()).add(record)
                for commit_ts, writer in self._write_registry.get(key, ()):
                    if writer is not record and commit_ts > record.start_ts:
                        self._note_edge(record, writer, acting=record)
            if record.predicates:
                self._predicate_readers.add(record)
                for predicate in record.predicates:
                    for entry in self._commit_log:
                        if entry.record is record or entry.commit_ts <= record.start_ts:
                            continue
                        for _key, old, new in entry.changes:
                            if predicate_membership_changed(predicate, old, new):
                                self._note_edge(record, entry.record, acting=record)
                                break

    def finish_read_only(self, handle: PendingSafeSnapshot) -> None:
        """Close out a tracked reader; its census entry may outlive it.

        An upgraded reader's SIREADs are purged immediately — nothing can
        read *under* a transaction that wrote nothing, so retained read-only
        registrations would only manufacture conservative aborts.  The
        pending entry itself stays until the census drains: the reader has
        already handed its reads to the application, so a census member
        committing dangerously after the reader finished must still abort.
        """
        if handle.upgraded:
            with self._mutex:
                self._purge_record(handle.record)

    def _rw_member_finished(
        self, txn_id: int, out_commit_ts: Optional[float] = None
    ) -> None:
        """One read-write transaction ended: update the pending censuses.

        ``out_commit_ts`` records the danger the member finished with (only
        a *commit* carrying an out-edge is dangerous; aborts and writeless
        commits pass ``None``) so a census taken after this moment can still
        judge the member (see :meth:`begin_read_only`).
        """
        with self._safe_mutex:
            self._member_finished_locked(txn_id, out_commit_ts)

    def _member_finished_locked(
        self, txn_id: int, out_commit_ts: Optional[float]
    ) -> None:
        self._finished_rw[txn_id] = out_commit_ts
        if not self._pending_safe:
            return
        resolved: List[int] = []
        for reader_id, handle in self._pending_safe.items():
            handle.census.discard(txn_id)
            if not handle.census:
                resolved.append(reader_id)
        for reader_id in resolved:
            handle = self._pending_safe.pop(reader_id)
            handle.safe = True
            self._safe_stats.became_safe += 1
            handle.event.set()

    def _gate_and_finish_commit(self, record: SsiTransactionRecord) -> None:
        """The safe-snapshot gate, run at a writer's commit (main mutex held).

        The committing writer may carry an rw-antidependency out to a
        transaction that committed at ``record.out_commit_ts``.  Any pending
        reader whose snapshot (a) was granted while this writer was in
        flight and (b) postdates that out-partner's commit could observe the
        Fekete read-only anomaly through this commit — the reader would see
        the out-partner's writes but not this writer's, closing the cycle.
        A non-deferrable reader may already have performed reads, so the
        *writer* is aborted (readers are never aborted) and the reader is
        upgraded to full tracking; the writer's retry begins after the
        reader's snapshot and can no longer threaten it.  A deferrable
        reader is still blocked at begin and has read nothing: it is sent
        back to retake its snapshot and the writer commits undisturbed.

        Gate check and member-finish registration happen under one
        ``_safe_mutex`` section, so a reader beginning concurrently either
        registers in time to be seen by the gate or sees this member (and
        its danger) as already finished — there is no window in between.
        """
        threat_ts = record.out_commit_ts
        with self._safe_mutex:
            if threat_ts is not None and self._pending_safe:
                blocked: List[PendingSafeSnapshot] = [
                    handle
                    for handle in self._pending_safe.values()
                    if record.txn_id in handle.census and handle.start_ts >= threat_ts
                ]
                hard = [handle for handle in blocked if not handle.deferrable]
                if hard:
                    for handle in hard:
                        handle.upgrade_required = True
                    self._safe_stats.writer_aborts += 1
                    raise UnsafeSnapshotError(
                        f"transaction {record.txn_id} commits with an "
                        "rw-antidependency out to a transaction that committed "
                        f"before the snapshot of {len(hard)} concurrent "
                        "read-only transaction(s); committing would expose the "
                        "read-only-transaction anomaly — retry the transaction"
                    )
                for handle in blocked:
                    # Deferrable readers are still parked at begin: no read
                    # has happened, so the snapshot is simply abandoned and
                    # retaken (the woken waiter sees ``safe`` still False).
                    self._pending_safe.pop(handle.txn_id, None)
                    self._safe_stats.retakes += 1
                    handle.event.set()
            self._member_finished_locked(record.txn_id, threat_ts)

    def finish_transaction(
        self,
        txn_id: int,
        record: Optional[SsiTransactionRecord],
        *,
        committed: bool,
        visible_ts: int = 0,
        finish_seq: int = 0,
    ) -> None:
        if record is None:
            return
        with self._mutex:
            if record.committed:
                return  # went through record_commit; retained until reclaim
            if not committed:
                self._purge_record(record)
                self._rw_member_finished(txn_id)
                return
            # Committed without writes: the record's SIREADs must survive
            # until no concurrent writer can commit any more.  The half-step
            # past the newest visible timestamp makes the record concurrent
            # with every transaction whose snapshot predates its finish,
            # without colliding with a real (integer) commit timestamp; the
            # finish sequence is what eventually lets reclaim drop it even
            # when no write ever advances the timestamp watermark.
            record.finished = True
            record.committed = True
            record.commit_ts = visible_ts + 0.5
            record.finish_seq = finish_seq
            # A writeless transaction wrote nothing a reader could have read
            # under, so it leaves every pending census without a gate check.
            self._rw_member_finished(txn_id)

    def release_locks(self, txn_id: int) -> None:
        self.detector.release_locks(txn_id)

    # -- write-time hooks -----------------------------------------------------

    def check_write(
        self,
        txn_id: int,
        start_ts: int,
        key: EntityKey,
        record: Optional[SsiTransactionRecord],
        read_newest_committed_ts: Callable[[], Optional[int]],
    ) -> None:
        if record is not None and record.doomed:
            self._abort_doomed(record)
        super().check_write(txn_id, start_ts, key, record, read_newest_committed_ts)

    # -- read-time hooks -------------------------------------------------------

    def register_point_read(self, record: SsiTransactionRecord, key: EntityKey) -> None:
        if key in record.read_keys:
            # Only the owning thread mutates ``read_keys``, so this dedup
            # test is safe outside the mutex — and it is what keeps repeat
            # reads (snapshot-cache hits included) at a set-lookup cost.
            return
        if record.doomed:
            self._abort_doomed(record)
        with self._mutex:
            record.read_keys.add(key)
            self._sireads.setdefault(key, set()).add(record)
            # Reader-side half of the race-free edge detection: a writer that
            # already committed a newer version of this key was concurrent
            # with us, so we read "under" its write — an rw edge out of us.
            for commit_ts, writer in self._write_registry.get(key, ()):
                if writer is not record and commit_ts > record.start_ts:
                    self._note_edge(record, writer, acting=record)

    def register_point_reads(
        self, record: SsiTransactionRecord, keys: Sequence[EntityKey]
    ) -> None:
        """Register a whole read batch under one tracker-mutex acquisition.

        The dedup filter runs outside the mutex — only the owning thread
        mutates ``read_keys``, exactly as in the scalar path — so a batch of
        repeat reads (snapshot-cache hits included) costs one set-lookup per
        key and never touches the lock.
        """
        fresh = [key for key in keys if key not in record.read_keys]
        if not fresh:
            return
        if record.doomed:
            self._abort_doomed(record)
        with self._mutex:
            read_keys = record.read_keys
            sireads = self._sireads
            write_registry = self._write_registry
            for key in fresh:
                if key in read_keys:
                    # Duplicate within the batch itself.
                    continue
                read_keys.add(key)
                sireads.setdefault(key, set()).add(record)
                for commit_ts, writer in write_registry.get(key, ()):
                    if writer is not record and commit_ts > record.start_ts:
                        self._note_edge(record, writer, acting=record)

    def register_predicate_read(
        self, record: SsiTransactionRecord, predicate: Predicate
    ) -> None:
        if predicate in record.predicates:
            return
        if record.doomed:
            self._abort_doomed(record)
        with self._mutex:
            record.predicates.add(predicate)
            self._predicate_readers.add(record)
            for entry in self._commit_log:
                if entry.record is record or entry.commit_ts <= record.start_ts:
                    continue
                for _key, old, new in entry.changes:
                    if predicate_membership_changed(predicate, old, new):
                        self._note_edge(record, entry.record, acting=record)
                        break

    def register_predicate_reads(
        self, record: SsiTransactionRecord, predicates: Sequence[Predicate]
    ) -> None:
        """Register many predicates (e.g. a batch of adjacency expansions)
        under one tracker-mutex acquisition."""
        fresh = [p for p in predicates if p not in record.predicates]
        if not fresh:
            return
        if record.doomed:
            self._abort_doomed(record)
        with self._mutex:
            registered = record.predicates
            for predicate in fresh:
                if predicate in registered:
                    continue
                registered.add(predicate)
                self._predicate_readers.add(record)
                for entry in self._commit_log:
                    if entry.record is record or entry.commit_ts <= record.start_ts:
                        continue
                    for _key, old, new in entry.changes:
                        if predicate_membership_changed(predicate, old, new):
                            self._note_edge(record, entry.record, acting=record)
                            break

    # -- commit-time hooks -----------------------------------------------------

    def validate_commit(
        self,
        txn_id: int,
        start_ts: int,
        record: Optional[SsiTransactionRecord],
        writes: Dict[EntityKey, Optional[object]],
        created: Set[EntityKey],
        newest_committed_ts: Callable[[EntityKey], Optional[int]],
    ) -> None:
        if record is not None:
            with self._mutex:
                if record.doomed:
                    self._raise_rw_abort(record, "was marked for abort by a "
                                         "concurrent committer (dangerous structure)")
                if record.in_conflict and record.out_conflict:
                    self._raise_rw_abort(record, "is the pivot of a dangerous structure")
        super().validate_commit(
            txn_id, start_ts, record, writes, created, newest_committed_ts
        )

    def record_commit(
        self,
        record: Optional[SsiTransactionRecord],
        changes: Sequence[Change],
        commit_ts: int,
    ) -> None:
        """Writer-side edge detection, atomically with the commit publication.

        Runs after the commit timestamp is issued but *before* any version
        installs, so raising here aborts the transaction with nothing to undo.
        The whole method is one critical section: decide first (collect every
        reader our changes conflict with, check the dangerous-structure
        rules), and only then mutate (apply edges, register our writes, mark
        the record committed) — an abort therefore leaves no trace.
        """
        if record is None:
            return
        with self._mutex:
            if record.doomed:
                self._raise_rw_abort(record, "was marked for abort by a "
                                     "concurrent committer (dangerous structure)")
            readers = self._conflicting_readers(record, changes)
            if readers and record.out_conflict:
                # Committing would make this transaction the pivot.
                self._raise_rw_abort(record, "is the pivot of a dangerous structure")
            for reader in readers:
                if reader.finished and reader.committed and reader.in_conflict:
                    # The reader is a pivot that has already committed — it
                    # cannot be aborted, so the structure is broken here.
                    self._raise_rw_abort(
                        record,
                        "completes a dangerous structure whose pivot "
                        f"(transaction {reader.txn_id}) has already committed",
                    )
            # Safe-snapshot gate: this commit must not expose the read-only
            # anomaly to a pending reader (raises with nothing installed).
            # On success it also marks this member finished for the pending
            # censuses, atomically with the gate decision.
            self._gate_and_finish_commit(record)
            # Point of no return: apply the edges and publish the commit.
            for reader in readers:
                self._note_edge(reader, record, acting=record, writer_commit_ts=commit_ts)
            record.finished = True
            record.committed = True
            record.commit_ts = commit_ts
            frozen = tuple(changes)
            for key, _old, _new in frozen:
                self._write_registry.setdefault(key, []).append((commit_ts, record))
            self._commit_log.append(_CommitLogEntry(commit_ts, record, frozen))

    def _conflicting_readers(
        self, record: SsiTransactionRecord, changes: Sequence[Change]
    ) -> List[SsiTransactionRecord]:
        """Concurrent transactions that read state these changes overwrite."""
        readers: Set[SsiTransactionRecord] = set()
        for key, _old, _new in changes:
            for reader in self._sireads.get(key, ()):
                if reader is not record and reader.concurrent_at(record.start_ts):
                    readers.add(reader)
        for reader in self._predicate_readers:
            if reader is record or reader in readers:
                continue
            if not reader.concurrent_at(record.start_ts):
                continue
            if any(
                predicate_membership_changed(predicate, old, new)
                for _key, old, new in changes
                for predicate in reader.predicates
            ):
                readers.add(reader)
        return list(readers)

    # -- edge bookkeeping ------------------------------------------------------

    def _note_edge(
        self,
        reader: SsiTransactionRecord,
        writer: SsiTransactionRecord,
        *,
        acting: SsiTransactionRecord,
        writer_commit_ts: Optional[float] = None,
    ) -> None:
        """Apply one rw-antidependency edge ``reader -> writer`` (mutex held).

        If either endpoint becomes a pivot, resolve per the dangerous-
        structure rules: abort the acting transaction when the pivot is the
        acting transaction itself or has already committed; doom an active
        pivot otherwise.  ``writer_commit_ts`` carries the timestamp of a
        writer that is committing right now (its record is not yet marked
        committed); every other caller reaches a writer that has one.
        """
        self._edges_observed += 1
        reader.out_conflict = True
        writer.in_conflict = True
        partner_ts = writer.commit_ts if writer.commit_ts is not None else writer_commit_ts
        if partner_ts is not None and (
            reader.out_commit_ts is None or partner_ts < reader.out_commit_ts
        ):
            reader.out_commit_ts = partner_ts
        for pivot in (reader, writer):
            if not (pivot.in_conflict and pivot.out_conflict):
                continue
            if pivot is acting:
                self._raise_rw_abort(acting, "is the pivot of a dangerous structure")
            if pivot.finished:
                if pivot.committed:
                    if acting.read_only:
                        # A safe-snapshot reader is never aborted.  This
                        # structure is harmless to it: the safe-snapshot gate
                        # aborts any census writer whose out-partner committed
                        # before the reader's snapshot, so a committed pivot
                        # reached from a read-only reader necessarily has an
                        # out-partner that committed *after* that snapshot —
                        # which admits the serial order reader < pivot < partner.
                        continue
                    self._raise_rw_abort(
                        acting,
                        "completes a dangerous structure whose pivot "
                        f"(transaction {pivot.txn_id}) has already committed",
                    )
            elif not pivot.doomed:
                pivot.doomed = True
                self._doomed_marked += 1

    def _abort_doomed(self, record: SsiTransactionRecord) -> None:
        with self._mutex:
            self._raise_rw_abort(record, "was marked for abort by a "
                                 "concurrent committer (dangerous structure)")

    def _raise_rw_abort(self, record: SsiTransactionRecord, why: str) -> None:
        self._rw_aborts += 1
        raise SerializationError(
            f"transaction {record.txn_id} {why}; retry the transaction"
        )

    # -- reclamation -----------------------------------------------------------

    def reclaim(
        self,
        watermark: int,
        *,
        quiescent: bool = False,
        oldest_active_txn_id: Optional[int] = None,
    ) -> int:
        """Drop SIREADs, registry rows and records no snapshot can still need.

        A committed record matters only to transactions concurrent with it,
        and every active transaction's start timestamp is at least the
        watermark — so ``commit_ts <= watermark`` (or a fully quiescent
        engine) makes the record, its SIREADs and its registry entries
        unreachable.  *Writeless* committed records carry a pseudo commit
        timestamp half a step above the watermark of their finish, which a
        pure-read workload would never advance past; those fall back to the
        begin-ordered transaction id: once every active transaction's id
        exceeds the record's finish sequence, nothing overlapping it can
        still exist.  Active records are never touched.
        """
        dropped = 0
        with self._mutex:
            for txn_id in list(self._records):
                record = self._records[txn_id]
                if not (record.finished and record.committed):
                    continue
                collectable = (
                    quiescent
                    or (record.commit_ts is not None and record.commit_ts <= watermark)
                    or (
                        record.finish_seq is not None
                        and oldest_active_txn_id is not None
                        and record.finish_seq < oldest_active_txn_id
                    )
                )
                if collectable:
                    dropped += 1 + len(record.read_keys) + len(record.predicates)
                    self._purge_record(record)
            for key in list(self._write_registry):
                entries = self._write_registry[key]
                kept = [
                    (ts, rec) for ts, rec in entries
                    if not (quiescent or ts <= watermark)
                ]
                dropped += len(entries) - len(kept)
                if kept:
                    self._write_registry[key] = kept
                else:
                    del self._write_registry[key]
            before = len(self._commit_log)
            self._commit_log = [
                entry for entry in self._commit_log
                if not (quiescent or entry.commit_ts <= watermark)
            ]
            dropped += before - len(self._commit_log)
            # Census bookkeeping: ids below every active transaction can
            # never appear in a future census (censuses only list oracle-
            # active transactions), so the finished-member map stays bounded.
            with self._safe_mutex:
                if quiescent:
                    if self._finished_rw:
                        self._finished_floor = max(
                            self._finished_floor, max(self._finished_rw) + 1
                        )
                        self._finished_rw.clear()
                elif oldest_active_txn_id is not None:
                    kept = {
                        txn_id: out_ts
                        for txn_id, out_ts in self._finished_rw.items()
                        if txn_id >= oldest_active_txn_id
                    }
                    if len(kept) != len(self._finished_rw):
                        self._finished_floor = max(
                            self._finished_floor, oldest_active_txn_id
                        )
                        self._finished_rw = kept
        self._entries_reclaimed += dropped
        return dropped

    def _purge_record(self, record: SsiTransactionRecord) -> None:
        """Remove one record and its SIREAD entries (mutex held)."""
        self._records.pop(record.txn_id, None)
        for key in record.read_keys:
            holders = self._sireads.get(key)
            if holders is not None:
                holders.discard(record)
                if not holders:
                    del self._sireads[key]
        record.read_keys.clear()
        record.predicates.clear()
        self._predicate_readers.discard(record)
        record.finished = True

    # -- statistics ------------------------------------------------------------

    def rw_antidependency_aborts(self) -> int:
        return self._rw_aborts

    def safe_snapshot_aborts(self) -> int:
        return self._safe_stats.writer_aborts

    def safe_snapshot_statistics(self) -> Dict[str, int]:
        with self._safe_mutex:
            return dict(
                self._safe_stats.as_dict(), pending=len(self._pending_safe)
            )

    def statistics(self) -> Dict[str, object]:
        with self._mutex:
            return {
                "policy": self.name,
                "conflict_policy": self.detector.policy.value,
                "tracked_transactions": len(self._records),
                "siread_keys": len(self._sireads),
                "siread_entries": sum(len(h) for h in self._sireads.values()),
                "predicate_readers": len(self._predicate_readers),
                "write_registry_entries": sum(
                    len(entries) for entries in self._write_registry.values()
                ),
                "commit_log_entries": len(self._commit_log),
                "rw_edges_observed": self._edges_observed,
                "rw_antidependency_aborts": self._rw_aborts,
                "transactions_doomed": self._doomed_marked,
                "entries_reclaimed": self._entries_reclaimed,
                "safe_snapshots": self.safe_snapshot_statistics(),
            }


def policy_for_isolation(
    isolation,
    lock_manager: LockManager,
    conflict_policy: ConflictPolicy = ConflictPolicy.FIRST_UPDATER_WINS,
) -> ConcurrencyControlPolicy:
    """The default policy for an isolation level (engine constructor helper)."""
    from repro.engine import IsolationLevel

    if isolation is IsolationLevel.SERIALIZABLE:
        return SerializableSnapshotPolicy(lock_manager, conflict_policy)
    if isolation is IsolationLevel.SNAPSHOT:
        return SnapshotWriteRulePolicy(lock_manager, conflict_policy)
    return TwoPhaseLockingPolicy(lock_manager)
