"""Snapshot descriptors.

A snapshot is simply a start timestamp: the transaction observes the most
recent committed version of every entity whose commit timestamp is equal to
or lower than that start timestamp (the paper's read rule).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Snapshot:
    """The immutable read view handed to a snapshot-isolation transaction."""

    txn_id: int
    start_ts: int

    def includes(self, commit_ts: int) -> bool:
        """Whether a version committed at ``commit_ts`` is inside this snapshot."""
        return commit_ts <= self.start_ts

    def is_concurrent_with(self, commit_ts: int) -> bool:
        """Whether a commit at ``commit_ts`` happened after this snapshot began.

        Concurrent commits are exactly the ones the write rule has to guard
        against: a write-write conflict exists when another transaction
        committed an update to the same entity with a commit timestamp the
        snapshot does not include.
        """
        return commit_ts > self.start_ts

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"snapshot(txn={self.txn_id}, start_ts={self.start_ts})"
