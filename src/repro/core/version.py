"""Versions and per-entity version chains.

Section 4 of the paper: "each object representing a node or relationship
stores a list of versions.  In that way, when a transaction reads a node, the
right version for the reading transaction can be obtained by traversing the
list of versions."

A :class:`Version` is one committed state of one entity: its full logical
payload (``NodeData`` / ``RelationshipData``), the commit timestamp of the
transaction that produced it, and — for deletes — a tombstone marker (payload
``None``).  A :class:`VersionChain` is the per-entity list, newest first,
living in the object cache.  Versions also carry the intrusive ``gc_prev`` /
``gc_next`` pointers used by the global garbage-collection list
(:class:`repro.core.gc.ThreadedVersionList`), which is the paper's "double
linked list sorted by timestamp".
"""

from __future__ import annotations

import threading
from typing import List, Optional, Union

from repro.graph.entity import EntityKey, NodeData, RelationshipData

#: Payload type of a version (``None`` marks a tombstone).
VersionPayload = Optional[Union[NodeData, RelationshipData]]


class Version:
    """One committed version of one entity."""

    __slots__ = (
        "key",
        "payload",
        "commit_ts",
        "reclaim_ts",
        "gc_prev",
        "gc_next",
        "in_gc_list",
    )

    def __init__(self, key: EntityKey, payload: VersionPayload, commit_ts: int) -> None:
        self.key = key
        self.payload = payload
        self.commit_ts = commit_ts
        #: Commit timestamp at which this version becomes reclaimable (set
        #: when the version is threaded onto the garbage-collection list).
        self.reclaim_ts: Optional[int] = None
        self.gc_prev: Optional["Version"] = None
        self.gc_next: Optional["Version"] = None
        self.in_gc_list = False

    @property
    def is_tombstone(self) -> bool:
        """Whether this version records a deletion."""
        return self.payload is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "tombstone" if self.is_tombstone else "data"
        return f"Version({self.key}, commit_ts={self.commit_ts}, {kind})"


class VersionChain:
    """The list of versions of one entity, newest first.

    The chain always contains *committed* versions only; a transaction's
    uncommitted writes live in its private write set (the paper: versions of
    uncommitted data items are kept private).
    """

    def __init__(self, key: EntityKey) -> None:
        self.key = key
        self._lock = threading.RLock()
        self._versions: List[Version] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)

    def is_empty(self) -> bool:
        """Whether every version of this entity has been garbage collected."""
        with self._lock:
            return not self._versions

    def versions(self) -> List[Version]:
        """Copy of the chain, newest first (used by GC and tests)."""
        with self._lock:
            return list(self._versions)

    def newest(self) -> Optional[Version]:
        """The most recently committed version (tombstone included), if any."""
        with self._lock:
            return self._versions[0] if self._versions else None

    def oldest(self) -> Optional[Version]:
        """The oldest version still kept in memory, if any."""
        with self._lock:
            return self._versions[-1] if self._versions else None

    def add_committed(self, version: Version) -> Optional[Version]:
        """Install a newly committed version at the head of the chain.

        Returns the version it supersedes (the previous newest), which the
        commit path threads onto the garbage-collection list.  Commit
        timestamps are monotonic, so the chain stays sorted by construction;
        an out-of-order insert indicates a logic error and is rejected.
        """
        with self._lock:
            if self._versions and version.commit_ts < self._versions[0].commit_ts:
                raise ValueError(
                    f"version for {self.key} committed at {version.commit_ts} is older "
                    f"than the chain head ({self._versions[0].commit_ts})"
                )
            superseded = self._versions[0] if self._versions else None
            self._versions.insert(0, version)
            return superseded

    def visible_to(self, start_ts: int) -> Optional[Version]:
        """The newest version with ``commit_ts <= start_ts`` (the read rule).

        Returns ``None`` when the entity did not exist yet at ``start_ts``
        (every version is newer).  The caller is responsible for interpreting
        a returned tombstone as "deleted".
        """
        with self._lock:
            for version in self._versions:
                if version.commit_ts <= start_ts:
                    return version
            return None

    def remove(self, version: Version) -> bool:
        """Remove one version from the chain (garbage collection path)."""
        with self._lock:
            try:
                self._versions.remove(version)
                return True
            except ValueError:
                return False

    def version_count(self) -> int:
        """Number of versions currently retained."""
        return len(self)

    def memory_footprint(self) -> int:
        """Rough number of retained payload objects (tombstones count as one)."""
        with self._lock:
            return len(self._versions)
