"""Versions and per-entity version chains.

Section 4 of the paper: "each object representing a node or relationship
stores a list of versions.  In that way, when a transaction reads a node, the
right version for the reading transaction can be obtained by traversing the
list of versions."

A :class:`Version` is one committed state of one entity: its full logical
payload (``NodeData`` / ``RelationshipData``), the commit timestamp of the
transaction that produced it, and — for deletes — a tombstone marker (payload
``None``).  A :class:`VersionChain` is the per-entity list, newest first,
living in the object cache.  Versions also carry the intrusive ``gc_prev`` /
``gc_next`` pointers used by the global garbage-collection list
(:class:`repro.core.gc.ThreadedVersionList`), which is the paper's "double
linked list sorted by timestamp".

Concurrency model (the paper's "SI readers never block" promise, taken
literally): the chain is **copy-on-write**.  Mutators — commit installs and
garbage collection — serialise on a per-chain write lock, build a fresh
immutable tuple and publish it with a single reference assignment.  Readers
(:meth:`VersionChain.visible_to`, :meth:`VersionChain.newest`, ...) load that
one reference and work on the immutable snapshot with **zero lock
acquisitions**; a reader racing a writer sees either the old tuple or the new
one, both of which are internally consistent.  Resolution binary-searches the
newest-first tuple by ``commit_ts`` after a head fast path (the common case:
the newest version is already visible).
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple, Union

from repro.graph.entity import EntityKey, NodeData, RelationshipData

#: Payload type of a version (``None`` marks a tombstone).
VersionPayload = Optional[Union[NodeData, RelationshipData]]

#: The empty published chain (shared; chains are usually born non-empty).
_EMPTY: Tuple["Version", ...] = ()


class Version:
    """One committed version of one entity."""

    __slots__ = (
        "key",
        "payload",
        "commit_ts",
        "reclaim_ts",
        "gc_prev",
        "gc_next",
        "in_gc_list",
    )

    def __init__(self, key: EntityKey, payload: VersionPayload, commit_ts: int) -> None:
        self.key = key
        self.payload = payload
        self.commit_ts = commit_ts
        #: Commit timestamp at which this version becomes reclaimable (set
        #: when the version is threaded onto the garbage-collection list).
        self.reclaim_ts: Optional[int] = None
        self.gc_prev: Optional["Version"] = None
        self.gc_next: Optional["Version"] = None
        self.in_gc_list = False

    @property
    def is_tombstone(self) -> bool:
        """Whether this version records a deletion."""
        return self.payload is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "tombstone" if self.is_tombstone else "data"
        return f"Version({self.key}, commit_ts={self.commit_ts}, {kind})"


class VersionChain:
    """The list of versions of one entity, newest first.

    The chain always contains *committed* versions only; a transaction's
    uncommitted writes live in its private write set (the paper: versions of
    uncommitted data items are kept private).

    Reads never take a lock: the versions live in an immutable tuple
    published through ``_published``, swapped atomically by writers holding
    :attr:`write_lock` (see the module docstring).
    """

    __slots__ = ("key", "_write_lock", "_published")

    def __init__(self, key: EntityKey) -> None:
        self.key = key
        self._write_lock = threading.RLock()
        self._published: Tuple[Version, ...] = _EMPTY

    @property
    def write_lock(self) -> threading.RLock:
        """The mutators' lock (exposed so tests can prove reads bypass it)."""
        return self._write_lock

    # -- lock-free reads ---------------------------------------------------------

    def snapshot(self) -> Tuple[Version, ...]:
        """The current immutable version tuple, newest first (no lock, no copy)."""
        return self._published

    def __len__(self) -> int:
        return len(self._published)

    def is_empty(self) -> bool:
        """Whether every version of this entity has been garbage collected."""
        return not self._published

    def versions(self) -> List[Version]:
        """Copy of the chain, newest first (used by GC and tests)."""
        return list(self._published)

    def newest(self) -> Optional[Version]:
        """The most recently committed version (tombstone included), if any."""
        published = self._published
        return published[0] if published else None

    def oldest(self) -> Optional[Version]:
        """The oldest version still kept in memory, if any."""
        published = self._published
        return published[-1] if published else None

    def visible_to(self, start_ts: int) -> Optional[Version]:
        """The newest version with ``commit_ts <= start_ts`` (the read rule).

        Returns ``None`` when the entity did not exist yet at ``start_ts``
        (every version is newer).  The caller is responsible for interpreting
        a returned tombstone as "deleted".  Lock-free: one atomic load of the
        published tuple, a head fast path, then a binary search over the
        descending ``commit_ts`` order.
        """
        published = self._published
        if not published:
            return None
        if published[0].commit_ts <= start_ts:
            return published[0]
        # Binary search for the first (leftmost) index whose commit_ts is at
        # or below start_ts; the tuple is sorted newest-first (descending).
        low, high = 1, len(published)
        while low < high:
            mid = (low + high) // 2
            if published[mid].commit_ts <= start_ts:
                high = mid
            else:
                low = mid + 1
        return published[low] if low < len(published) else None

    def version_count(self) -> int:
        """Number of versions currently retained."""
        return len(self._published)

    def memory_footprint(self) -> int:
        """Rough number of retained payload objects (tombstones count as one)."""
        return len(self._published)

    # -- copy-on-write mutations ---------------------------------------------------

    def add_committed(self, version: Version) -> Optional[Version]:
        """Install a newly committed version at the head of the chain.

        Returns the version it supersedes (the previous newest), which the
        commit path threads onto the garbage-collection list.  Commit
        timestamps are monotonic, so the chain stays sorted by construction;
        an out-of-order insert indicates a logic error and is rejected.
        """
        with self._write_lock:
            published = self._published
            if published and version.commit_ts < published[0].commit_ts:
                raise ValueError(
                    f"version for {self.key} committed at {version.commit_ts} is older "
                    f"than the chain head ({published[0].commit_ts})"
                )
            superseded = published[0] if published else None
            self._published = (version,) + published
            return superseded

    def remove(self, version: Version) -> bool:
        """Remove one version (garbage collection path) by swapping the tuple.

        The old tuple is never mutated, so a reader that already loaded it
        keeps resolving against a consistent — if momentarily stale — chain;
        staleness is safe because GC only removes versions no active snapshot
        can select.
        """
        with self._write_lock:
            published = self._published
            for index, candidate in enumerate(published):
                if candidate is version:
                    self._published = published[:index] + published[index + 1:]
                    return True
            return False
