"""Vacuum-style garbage collection (the comparison baseline).

Section 4 of the paper motivates the threaded GC list by contrast with
PostgreSQL: "in PostgreSQL this process, called vacuum process, stops the
processing for a few seconds periodically.  This happens because it traverses
all the pages in the persistent storage and rewrites them after removing the
obsolete versions."

:class:`VacuumCollector` reproduces that cost model: a collection pass scans
*every* version chain in the cache **and** every record in the persistent
node and relationship stores (touching all pages through the page cache),
deciding for each version whether it is obsolete — instead of visiting only
the versions already known to be reclaimable.  When given the engine's commit
pause hook it also performs the scan stop-the-world, so experiment E5 can
measure both the CPU cost and the induced commit stall.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, ContextManager, Dict, Optional

from repro.core.timestamps import TimestampOracle
from repro.core.version import Version, VersionChain
from repro.core.version_store import VersionStore
from repro.core.versioned_index import VersionedIndexSet
from repro.graph.entity import NodeData, RelationshipData
from repro.graph.store_manager import StoreManager


@dataclass
class VacuumStats:
    """Outcome of one vacuum pass."""

    watermark: int = 0
    chains_scanned: int = 0
    versions_examined: int = 0
    versions_collected: int = 0
    store_records_scanned: int = 0
    entities_purged: int = 0
    cc_entries_reclaimed: int = 0
    duration_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view of the counters."""
        return {
            "watermark": self.watermark,
            "chains_scanned": self.chains_scanned,
            "versions_examined": self.versions_examined,
            "versions_collected": self.versions_collected,
            "store_records_scanned": self.store_records_scanned,
            "entities_purged": self.entities_purged,
            "cc_entries_reclaimed": self.cc_entries_reclaimed,
            "duration_seconds": self.duration_seconds,
        }


class VacuumCollector:
    """Full-scan, stop-the-world garbage collector (PostgreSQL-style baseline)."""

    def __init__(
        self,
        version_store: VersionStore,
        oracle: TimestampOracle,
        indexes: VersionedIndexSet,
        store: StoreManager,
        *,
        pause_commits: Optional[Callable[[], ContextManager[None]]] = None,
        cc_policy=None,
    ) -> None:
        """``pause_commits`` is a callable returning a context manager that
        blocks the engine's commit path while held (the stop-the-world part).
        ``cc_policy`` additionally has its SSI tracking state reclaimed with
        the same watermark, mirroring the threaded collector.
        """
        self.version_store = version_store
        self.oracle = oracle
        self.indexes = indexes
        self.store = store
        self.cc_policy = cc_policy
        self._pause_commits = pause_commits
        self._lock = threading.Lock()
        self.collections_run = 0

    def collect(self) -> VacuumStats:
        """Run one full-scan vacuum pass and return its statistics."""
        with self._lock:
            pause = self._pause_commits() if self._pause_commits is not None else contextlib.nullcontext()
            started = time.perf_counter()
            stats = VacuumStats(watermark=self.oracle.watermark())
            with pause:
                self._scan_chains(stats)
                self._scan_store(stats)
                self.indexes.purge(stats.watermark)
                if self.cc_policy is not None:
                    stats.cc_entries_reclaimed = self.cc_policy.reclaim(
                        stats.watermark,
                        quiescent=self.oracle.active_count() == 0,
                        oldest_active_txn_id=self.oracle.oldest_active_txn_id(),
                    )
            stats.duration_seconds = time.perf_counter() - started
            self.collections_run += 1
            return stats

    # -- internal -----------------------------------------------------------------

    def _scan_chains(self, stats: VacuumStats) -> None:
        """Examine every version of every chain (the expensive part)."""
        for key, chain in self.version_store.chains():
            stats.chains_scanned += 1
            versions = chain.snapshot()
            stats.versions_examined += len(versions)
            # Examine oldest-first so that superseded versions are judged while
            # the newer version (or tombstone) that obsoletes them is still in
            # the chain.  Each removal publishes a fresh tuple (copy-on-write),
            # so obsolescence is re-judged against the chain's *current*
            # snapshot, not the one captured before this pass started.
            for version in reversed(versions):
                if self._is_obsolete(chain.snapshot(), version, stats.watermark):
                    if chain.remove(version):
                        stats.versions_collected += 1
                        self._maybe_purge(chain, version, stats)
            if chain.is_empty():
                self.version_store.remove_chain(key)

    def _scan_store(self, stats: VacuumStats) -> None:
        """Touch every persistent record, as a vacuum scan of all pages would."""
        for _node_id in self.store.iter_node_ids():
            stats.store_records_scanned += 1
        for _rel_id in self.store.iter_relationship_ids():
            stats.store_records_scanned += 1

    @staticmethod
    def _is_obsolete(versions, version: Version, watermark: int) -> bool:
        """Obsolescence test evaluated from scratch for every version.

        ``versions`` is the chain's current published tuple, newest first.
        """
        if version.is_tombstone:
            newest = versions[0] if versions else None
            return newest is version and version.commit_ts <= watermark
        newer = [v for v in versions if v.commit_ts > version.commit_ts]
        return any(v.commit_ts <= watermark for v in newer)

    def _maybe_purge(self, chain: VersionChain, version: Version, stats: VacuumStats) -> None:
        newest = chain.newest()
        payload = version.payload
        if newest is not None and newest.is_tombstone and payload is not None:
            if isinstance(payload, NodeData):
                self.indexes.purge_node(payload)
                stats.entities_purged += 1
            elif isinstance(payload, RelationshipData):
                self.indexes.purge_relationship(payload)
                stats.entities_purged += 1
