"""The snapshot-isolation read rule.

"The read rule states that a transaction should observe the most recent
committed version of each data item at the time the transaction started"
(Section 3).  These helpers centralise that rule so the transaction, the
enriched iterator and the multi-versioned indexes all apply it identically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.version import Version, VersionChain, VersionPayload


def version_visible(version: Version, start_ts: int) -> bool:
    """Whether one committed version is inside the snapshot at ``start_ts``."""
    return version.commit_ts <= start_ts


def resolve_chain(chain: Optional[VersionChain], start_ts: int) -> Optional[Version]:
    """The version of a chain visible at ``start_ts`` (tombstones included)."""
    if chain is None:
        return None
    return chain.visible_to(start_ts)


def resolve_payload(chain: Optional[VersionChain], start_ts: int) -> VersionPayload:
    """The entity state visible at ``start_ts``: data, or ``None`` if absent/deleted."""
    version = resolve_chain(chain, start_ts)
    if version is None or version.is_tombstone:
        return None
    return version.payload


def resolve_payloads(
    chains: Sequence[Optional[VersionChain]], start_ts: int
) -> List[VersionPayload]:
    """Apply the read rule to many chains at once (order-preserving).

    The batch equivalent of :func:`resolve_payload`, used by the vectorized
    executor's read path: one Python-level loop resolves a whole batch of
    chains against the same snapshot instead of paying a function call per
    entity.  ``visible_to`` is lock-free, so the loop never blocks however
    large the batch.
    """
    resolved: List[VersionPayload] = []
    append = resolved.append
    for chain in chains:
        if chain is None:
            append(None)
            continue
        version = chain.visible_to(start_ts)
        if version is None or version.is_tombstone:
            append(None)
        else:
            append(version.payload)
    return resolved


def payload_visible_from_store(stored_commit_ts: int, start_ts: int) -> bool:
    """Visibility of an entity loaded straight from the persistent store.

    The paper adds the commit timestamp as an extra property on persisted
    nodes and relationships; when the cache holds no chain for an entity the
    persisted commit timestamp alone decides visibility (if it is newer than
    the snapshot there cannot be any older version either, otherwise a chain
    would still be pinned in the cache).
    """
    return stored_commit_ts <= start_ts
