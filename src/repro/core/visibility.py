"""The snapshot-isolation read rule.

"The read rule states that a transaction should observe the most recent
committed version of each data item at the time the transaction started"
(Section 3).  These helpers centralise that rule so the transaction, the
enriched iterator and the multi-versioned indexes all apply it identically.
"""

from __future__ import annotations

from typing import Optional

from repro.core.version import Version, VersionChain, VersionPayload


def version_visible(version: Version, start_ts: int) -> bool:
    """Whether one committed version is inside the snapshot at ``start_ts``."""
    return version.commit_ts <= start_ts


def resolve_chain(chain: Optional[VersionChain], start_ts: int) -> Optional[Version]:
    """The version of a chain visible at ``start_ts`` (tombstones included)."""
    if chain is None:
        return None
    return chain.visible_to(start_ts)


def resolve_payload(chain: Optional[VersionChain], start_ts: int) -> VersionPayload:
    """The entity state visible at ``start_ts``: data, or ``None`` if absent/deleted."""
    version = resolve_chain(chain, start_ts)
    if version is None or version.is_tombstone:
        return None
    return version.payload


def payload_visible_from_store(stored_commit_ts: int, start_ts: int) -> bool:
    """Visibility of an entity loaded straight from the persistent store.

    The paper adds the commit timestamp as an extra property on persisted
    nodes and relationships; when the cache holds no chain for an entity the
    persisted commit timestamp alone decides visibility (if it is newer than
    the snapshot there cannot be any older version either, otherwise a chain
    would still be pinned in the cache).
    """
    return stored_commit_ts <= start_ts
