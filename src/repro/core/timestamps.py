"""Timestamp oracle.

Section 3 of the paper: "The most common way to enforce the read rule of
snapshot isolation is to associate a commit timestamp to versions. ... This
mechanism given a start timestamp should enable to observe the most recent
committed state that has a commit timestamp equal or lower than the start
timestamp."

The oracle issues start timestamps to beginning transactions, issues commit
timestamps to committing transactions, and tracks the set of active
transactions so garbage collection can compute the *watermark*: the oldest
start timestamp any active transaction is still reading at.

Out-of-order publication.  With the sharded commit pipeline several
transactions hold commit timestamps at once and may finish installing their
versions in any order.  A start timestamp must never cover a commit whose
versions are still being installed, so the oracle keeps the set of issued but
not-yet-published commit timestamps (a min-heap) and exposes as the *snapshot
watermark* only the largest timestamp below which every commit has been
published.  A slow committer therefore pins the snapshot watermark — later
commits stay invisible to new snapshots until the gap closes — which is
exactly what prevents a torn snapshot.

The price of a scalar watermark is that a new snapshot can briefly lag
commits that are already fully published (even the beginning transaction's
own previous commit).  The write rule then aborts, conservatively, any
update over such an uncovered commit — allowing it would be a lost update —
and applications retry, the same discipline snapshot isolation already
demands for genuine write-write conflicts.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Dict, List, Optional, Set, Tuple


class TimestampOracle:
    """Monotonic source of transaction ids, start and commit timestamps."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._txn_ids = itertools.count(1)
        #: Newest commit timestamp below which *every* commit is published
        #: (the contiguous snapshot watermark handed to new transactions).
        self._latest_visible_ts = 0
        #: Newest commit timestamp handed out (may not be installed yet).
        self._newest_issued_ts = 0
        #: Issued commit timestamps whose versions are still being installed.
        self._pending_commits: List[int] = []
        #: Published timestamps waiting for an older pending commit to finish.
        self._published_ahead: Set[int] = set()
        #: Active transactions: txn id -> start timestamp.
        self._active: Dict[int, int] = {}
        #: Subset of the active transactions that were begun read-write.
        #: Read-only serializable transactions census this set at snapshot
        #: grant: only a read-write transaction already in flight at that
        #: moment can ever commit with an rw-antidependency out to something
        #: that committed before the new snapshot (the precondition of the
        #: read-only-transaction anomaly).
        self._active_read_write: Set[int] = set()
        #: Newest transaction id handed out (ids are begin-ordered).
        self._newest_txn_id = 0
        #: Lifetime counters for statistics.
        self.transactions_started = 0
        self.commits_issued = 0

    # -- transaction lifecycle ------------------------------------------------

    def begin_transaction(self) -> Tuple[int, int]:
        """Start a transaction; returns ``(txn_id, start_ts)``.

        The start timestamp is the contiguous snapshot watermark: the newest
        commit timestamp at or below which every issued commit has published
        its versions.  The new transaction therefore observes exactly the
        committed state as of this moment (the paper's "snapshot of the
        committed state") with no risk of reading a half-installed commit.
        """
        with self._lock:
            txn_id = next(self._txn_ids)
            self._newest_txn_id = txn_id
            start_ts = self._latest_visible_ts
            self._active[txn_id] = start_ts
            self._active_read_write.add(txn_id)
            self.transactions_started += 1
            return txn_id, start_ts

    def begin_read_only_transaction(self) -> Tuple[int, int, Tuple[int, ...]]:
        """Start a read-only transaction; returns ``(txn_id, start_ts, census)``.

        The census is the set of read-write transactions in flight at the
        instant the snapshot is granted, taken atomically under the oracle
        lock — a writer beginning or finishing after the grant is, by
        construction, either in the census or provably unable to threaten
        this snapshot (see the safe-snapshot tracker in
        :mod:`repro.core.cc_policy`).  The transaction itself is *not*
        added to the read-write set, so concurrent read-only transactions
        never census each other.
        """
        with self._lock:
            txn_id = next(self._txn_ids)
            self._newest_txn_id = txn_id
            start_ts = self._latest_visible_ts
            self._active[txn_id] = start_ts
            self.transactions_started += 1
            return txn_id, start_ts, tuple(self._active_read_write)

    def issue_commit_timestamp(self) -> int:
        """Reserve the next commit timestamp for a committing transaction.

        The timestamp joins the pending set and is excluded from new snapshots
        until :meth:`publish_commit` is called for it.
        """
        with self._lock:
            self._newest_issued_ts += 1
            heapq.heappush(self._pending_commits, self._newest_issued_ts)
            self.commits_issued += 1
            return self._newest_issued_ts

    def publish_commit(self, txn_id: int, commit_ts: int) -> None:
        """Mark a commit's versions as installed and retire the transaction.

        The snapshot watermark advances only across the *contiguous* prefix of
        published commits: publishing timestamp 7 while 5 is still installing
        leaves the watermark at 4, and new snapshots see neither until 5
        publishes too.
        """
        with self._lock:
            self._mark_published(commit_ts)
            self._active.pop(txn_id, None)
            self._active_read_write.discard(txn_id)

    def advance_to(self, commit_ts: int) -> None:
        """Fast-forward the oracle to at least ``commit_ts``.

        Used when an engine opens an existing store: persisted versions carry
        commit timestamps from earlier sessions, and new snapshots must cover
        them.
        """
        with self._lock:
            if commit_ts > self._latest_visible_ts:
                self._latest_visible_ts = commit_ts
            if commit_ts > self._newest_issued_ts:
                self._newest_issued_ts = commit_ts

    def retire_transaction(self, txn_id: int) -> None:
        """Remove a transaction from the active set (abort / read-only finish)."""
        with self._lock:
            self._active.pop(txn_id, None)
            self._active_read_write.discard(txn_id)

    # -- inspection ---------------------------------------------------------------

    @property
    def latest_commit_ts(self) -> int:
        """Newest commit timestamp covered by new snapshots (contiguous prefix)."""
        with self._lock:
            return self._latest_visible_ts

    def pending_commit_count(self) -> int:
        """Number of issued commit timestamps not yet published.

        Timestamps published ahead of an older pending commit stay in the
        contiguity heap until the gap closes but are no longer *pending*.
        """
        with self._lock:
            return max(0, len(self._pending_commits) - len(self._published_ahead))

    def active_count(self) -> int:
        """Number of transactions currently registered as active."""
        with self._lock:
            return len(self._active)

    def newest_txn_id(self) -> int:
        """Newest transaction id issued (transaction ids are begin-ordered)."""
        with self._lock:
            return self._newest_txn_id

    def oldest_active_txn_id(self) -> Optional[int]:
        """Smallest active transaction id, or ``None`` when none is active.

        Because ids are issued at begin time, every transaction whose id is
        below this value has finished — which is how the SSI policy decides a
        committed *writeless* record (whose pseudo commit timestamp never
        falls below the watermark on its own) can no longer overlap anything.
        """
        with self._lock:
            return min(self._active) if self._active else None

    def active_start_timestamps(self) -> Dict[int, int]:
        """Snapshot of the active transactions (txn id -> start timestamp)."""
        with self._lock:
            return dict(self._active)

    def watermark(self) -> int:
        """Oldest start timestamp still readable by an active transaction.

        With no active transactions the watermark equals the snapshot
        watermark: everything older than the latest version of each entity is
        reclaimable (the paper's garbage-collection criterion).
        """
        with self._lock:
            if self._active:
                return min(self._active.values())
            return self._latest_visible_ts

    def is_active(self, txn_id: int) -> bool:
        """Whether ``txn_id`` is still registered as active."""
        with self._lock:
            return txn_id in self._active

    def start_ts_of(self, txn_id: int) -> Optional[int]:
        """Start timestamp of an active transaction, or ``None``."""
        with self._lock:
            return self._active.get(txn_id)

    # -- internal -------------------------------------------------------------

    def _mark_published(self, commit_ts: int) -> None:
        """Record one published commit and advance the contiguous watermark.

        ``commit_ts`` must come from :meth:`issue_commit_timestamp`; a
        timestamp that was never issued has no pending entry to gate on and
        simply never advances the watermark (conservative by construction).
        """
        if commit_ts <= self._latest_visible_ts:
            return  # already covered (double publish / advance_to overlap)
        self._published_ahead.add(commit_ts)
        while self._pending_commits and self._pending_commits[0] in self._published_ahead:
            ts = heapq.heappop(self._pending_commits)
            self._published_ahead.discard(ts)
            if ts > self._latest_visible_ts:
                self._latest_visible_ts = ts
