"""Timestamp oracle.

Section 3 of the paper: "The most common way to enforce the read rule of
snapshot isolation is to associate a commit timestamp to versions. ... This
mechanism given a start timestamp should enable to observe the most recent
committed state that has a commit timestamp equal or lower than the start
timestamp."

The oracle issues start timestamps to beginning transactions (equal to the
newest commit timestamp whose writes are fully installed), issues commit
timestamps to committing transactions, and tracks the set of active
transactions so garbage collection can compute the *watermark*: the oldest
start timestamp any active transaction is still reading at.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Optional, Tuple


class TimestampOracle:
    """Monotonic source of transaction ids, start and commit timestamps."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._txn_ids = itertools.count(1)
        #: Newest commit timestamp whose versions are fully installed.
        self._latest_visible_ts = 0
        #: Newest commit timestamp handed out (may not be installed yet).
        self._newest_issued_ts = 0
        #: Active transactions: txn id -> start timestamp.
        self._active: Dict[int, int] = {}
        #: Lifetime counters for statistics.
        self.transactions_started = 0
        self.commits_issued = 0

    # -- transaction lifecycle ------------------------------------------------

    def begin_transaction(self) -> Tuple[int, int]:
        """Start a transaction; returns ``(txn_id, start_ts)``.

        The start timestamp is the newest commit timestamp whose writes are
        already installed, so the new transaction observes exactly the
        committed state as of this moment (the paper's "snapshot of the
        committed state").
        """
        with self._lock:
            txn_id = next(self._txn_ids)
            start_ts = self._latest_visible_ts
            self._active[txn_id] = start_ts
            self.transactions_started += 1
            return txn_id, start_ts

    def issue_commit_timestamp(self) -> int:
        """Reserve the next commit timestamp for a committing transaction."""
        with self._lock:
            self._newest_issued_ts += 1
            self.commits_issued += 1
            return self._newest_issued_ts

    def publish_commit(self, txn_id: int, commit_ts: int) -> None:
        """Mark a commit's versions as installed and retire the transaction.

        Only after this call will new transactions receive a start timestamp
        that covers ``commit_ts``, which is what makes "assign commit
        timestamp, then install versions" safe.
        """
        with self._lock:
            if commit_ts > self._latest_visible_ts:
                self._latest_visible_ts = commit_ts
            self._active.pop(txn_id, None)

    def advance_to(self, commit_ts: int) -> None:
        """Fast-forward the oracle to at least ``commit_ts``.

        Used when an engine opens an existing store: persisted versions carry
        commit timestamps from earlier sessions, and new snapshots must cover
        them.
        """
        with self._lock:
            if commit_ts > self._latest_visible_ts:
                self._latest_visible_ts = commit_ts
            if commit_ts > self._newest_issued_ts:
                self._newest_issued_ts = commit_ts

    def retire_transaction(self, txn_id: int) -> None:
        """Remove a transaction from the active set (abort / read-only finish)."""
        with self._lock:
            self._active.pop(txn_id, None)

    # -- inspection ---------------------------------------------------------------

    @property
    def latest_commit_ts(self) -> int:
        """Newest fully installed commit timestamp."""
        with self._lock:
            return self._latest_visible_ts

    def active_count(self) -> int:
        """Number of transactions currently registered as active."""
        with self._lock:
            return len(self._active)

    def active_start_timestamps(self) -> Dict[int, int]:
        """Snapshot of the active transactions (txn id -> start timestamp)."""
        with self._lock:
            return dict(self._active)

    def watermark(self) -> int:
        """Oldest start timestamp still readable by an active transaction.

        With no active transactions the watermark equals the newest installed
        commit timestamp: everything older than the latest version of each
        entity is reclaimable (the paper's garbage-collection criterion).
        """
        with self._lock:
            if self._active:
                return min(self._active.values())
            return self._latest_visible_ts

    def is_active(self, txn_id: int) -> bool:
        """Whether ``txn_id`` is still registered as active."""
        with self._lock:
            return txn_id in self._active

    def start_ts_of(self, txn_id: int) -> Optional[int]:
        """Start timestamp of an active transaction, or ``None``."""
        with self._lock:
            return self._active.get(txn_id)
