"""Version garbage collection.

Section 4 of the paper: "In order to make the version garbage collection
efficient, they are threaded with a double linked list sorted by timestamp to
enable to perform the garbage collection just traversing those versions that
must be garbage collected.  In this way, the cost of garbage collection is
reduced to the minimum."

Implementation.  A version becomes *reclaimable* at a specific commit
timestamp:

* a version superseded by a newer one is reclaimable once the *superseding*
  commit timestamp falls at or below the watermark (no active snapshot can
  still select the old version), and
* a tombstone is reclaimable once its own commit timestamp falls at or below
  the watermark (no active snapshot can still see the entity at all).

Versions are threaded onto the :class:`ThreadedVersionList` at the moment
that reclaim timestamp becomes known (i.e. when the superseding commit
happens).  Commit timestamps are monotonic but, under the sharded commit
pipeline, installs can *finish* out of timestamp order, so the list inserts
each version in sorted position (a near-tail walk, O(1) amortised) rather
than relying on append order.  A collection pass therefore pops from the
head only while ``reclaim_ts <= watermark`` and never looks at a version
that must be retained — the property the paper claims for its threaded
list, and the property benchmark E5 compares against the full-scan vacuum
baseline.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.timestamps import TimestampOracle
from repro.core.version import Version
from repro.core.version_store import VersionStore
from repro.core.versioned_index import VersionedIndexSet
from repro.graph.entity import EntityKind, NodeData, RelationshipData


@dataclass
class GcStats:
    """Outcome of one garbage-collection pass."""

    watermark: int = 0
    versions_examined: int = 0
    versions_collected: int = 0
    entities_purged: int = 0
    index_intervals_purged: int = 0
    cc_entries_reclaimed: int = 0
    duration_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view of the counters."""
        return {
            "watermark": self.watermark,
            "versions_examined": self.versions_examined,
            "versions_collected": self.versions_collected,
            "entities_purged": self.entities_purged,
            "index_intervals_purged": self.index_intervals_purged,
            "cc_entries_reclaimed": self.cc_entries_reclaimed,
            "duration_seconds": self.duration_seconds,
        }


class ThreadedVersionList:
    """The paper's doubly-linked version list, sorted by reclaim timestamp."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._head: Optional[Version] = None
        self._tail: Optional[Version] = None
        self._size = 0

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def append(self, version: Version, reclaim_ts: int) -> None:
        """Thread a version into the list, keeping it sorted by reclaim timestamp.

        Commits finish installing out of timestamp order under the sharded
        pipeline, so appends are *nearly* sorted rather than sorted by
        construction: the insertion point is found by walking back from the
        tail, which stays O(1) amortised because the disorder is bounded by
        the number of concurrently installing commits.  Keeping the list
        sorted preserves the pop-from-head-only collection property —
        otherwise one newer version at the head would stall reclamation of
        everything queued behind it.
        """
        with self._lock:
            if version.in_gc_list:
                return
            version.reclaim_ts = reclaim_ts
            predecessor = self._tail
            while predecessor is not None and (predecessor.reclaim_ts or 0) > reclaim_ts:
                predecessor = predecessor.gc_prev
            if predecessor is None:
                version.gc_prev = None
                version.gc_next = self._head
                if self._head is not None:
                    self._head.gc_prev = version
                self._head = version
                if self._tail is None:
                    self._tail = version
            else:
                version.gc_prev = predecessor
                version.gc_next = predecessor.gc_next
                if predecessor.gc_next is not None:
                    predecessor.gc_next.gc_prev = version
                else:
                    self._tail = version
                predecessor.gc_next = version
            version.in_gc_list = True
            self._size += 1

    def remove(self, version: Version) -> None:
        """Unlink a version from the list (no-op if it is not threaded)."""
        with self._lock:
            if not version.in_gc_list:
                return
            if version.gc_prev is not None:
                version.gc_prev.gc_next = version.gc_next
            else:
                self._head = version.gc_next
            if version.gc_next is not None:
                version.gc_next.gc_prev = version.gc_prev
            else:
                self._tail = version.gc_prev
            version.gc_prev = None
            version.gc_next = None
            version.in_gc_list = False
            self._size -= 1

    def pop_reclaimable(self, watermark: int) -> List[Version]:
        """Unlink and return every head version with ``reclaim_ts <= watermark``.

        Because the list is sorted by reclaim timestamp the walk stops at the
        first version that must be retained; versions that cannot be collected
        are never visited.
        """
        popped: List[Version] = []
        with self._lock:
            current = self._head
            while current is not None and (current.reclaim_ts or 0) <= watermark:
                next_version = current.gc_next
                self.remove(current)
                popped.append(current)
                current = next_version
        return popped

    def peek_oldest(self) -> Optional[Version]:
        """The head of the list (oldest reclaim timestamp), if any."""
        with self._lock:
            return self._head


class GarbageCollector:
    """Collects obsolete versions using the threaded list (the paper's design)."""

    def __init__(
        self,
        version_store: VersionStore,
        oracle: TimestampOracle,
        indexes: VersionedIndexSet,
        gc_list: Optional[ThreadedVersionList] = None,
        *,
        cc_policy=None,
    ) -> None:
        """``cc_policy`` (a :class:`~repro.core.cc_policy.ConcurrencyControlPolicy`)
        gets its :meth:`reclaim` hook driven with the same watermark as the
        version reclamation, so SSI SIREAD entries and commit records are
        dropped exactly when the snapshots that could still form edges with
        them are gone."""
        self.version_store = version_store
        self.oracle = oracle
        self.indexes = indexes
        self.cc_policy = cc_policy
        self.gc_list = gc_list if gc_list is not None else ThreadedVersionList()
        self._lock = threading.Lock()
        self.total_stats = GcStats()
        self.collections_run = 0

    # -- commit-side hooks -----------------------------------------------------

    def version_superseded(self, old_version: Version, superseding_commit_ts: int) -> None:
        """Thread a superseded version onto the GC list (called at commit)."""
        self.gc_list.append(old_version, superseding_commit_ts)

    def tombstone_installed(self, tombstone: Version) -> None:
        """Thread a tombstone onto the GC list (called at delete commit)."""
        self.gc_list.append(tombstone, tombstone.commit_ts)

    # -- collection ---------------------------------------------------------------

    def pending_versions(self) -> int:
        """Number of versions currently waiting on the GC list."""
        return len(self.gc_list)

    def collect(self) -> GcStats:
        """Run one garbage-collection pass and return its statistics."""
        with self._lock:
            started = time.perf_counter()
            stats = GcStats(watermark=self.oracle.watermark())
            reclaimable = self.gc_list.pop_reclaimable(stats.watermark)
            stats.versions_examined = len(reclaimable)
            for version in reclaimable:
                stats.versions_collected += self._reclaim(version, stats)
            stats.index_intervals_purged = self.indexes.purge(stats.watermark)
            if self.cc_policy is not None:
                stats.cc_entries_reclaimed = self.cc_policy.reclaim(
                    stats.watermark,
                    quiescent=self.oracle.active_count() == 0,
                    oldest_active_txn_id=self.oracle.oldest_active_txn_id(),
                )
            stats.duration_seconds = time.perf_counter() - started
            self._accumulate(stats)
            return stats

    # -- internal -------------------------------------------------------------------

    def _reclaim(self, version: Version, stats: GcStats) -> int:
        """Remove one reclaimable version from its chain; purge emptied entities.

        ``chain.remove`` swaps in a fresh immutable tuple rather than mutating
        the published one, so a concurrent reader that already resolved
        against the pre-reclaim chain keeps a consistent view; GC only ever
        removes versions no active snapshot can select (watermark rule), so
        that stale view can never surface a reclaimed version to a reader
        that should not see it.
        """
        chain = self.version_store.get_chain(version.key)
        if chain is None:
            return 0
        newest = chain.newest()
        removed = chain.remove(version)
        if not removed:
            return 0
        if not version.is_tombstone:
            # If this payload-carrying version is being dropped because the
            # entity was deleted, remove its traces from the versioned indexes
            # and the adjacency map while the payload is still at hand.
            if newest is not None and newest.is_tombstone:
                self._purge_entity_payload(version, stats)
        else:
            # The tombstone is the last thing to go; forget the chain.
            if chain.is_empty():
                self.version_store.remove_chain(version.key)
        return 1

    def _purge_entity_payload(self, version: Version, stats: GcStats) -> None:
        payload = version.payload
        if isinstance(payload, NodeData):
            self.indexes.purge_node(payload)
            stats.entities_purged += 1
        elif isinstance(payload, RelationshipData):
            self.indexes.purge_relationship(payload)
            stats.entities_purged += 1

    def _accumulate(self, stats: GcStats) -> None:
        self.collections_run += 1
        self.total_stats.versions_examined += stats.versions_examined
        self.total_stats.versions_collected += stats.versions_collected
        self.total_stats.entities_purged += stats.entities_purged
        self.total_stats.index_intervals_purged += stats.index_intervals_purged
        self.total_stats.cc_entries_reclaimed += stats.cc_entries_reclaimed
        self.total_stats.duration_seconds += stats.duration_seconds
        self.total_stats.watermark = stats.watermark
