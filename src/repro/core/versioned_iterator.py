"""The enriched store iterator.

Section 4 of the paper: "Neo4j uses an iterator to traverse the persistent
state when needed to answer queries.  We have enriched this iterator to take
into account the versions kept in the cache in order to guarantee
read-your-own-writes behaviour."

:class:`SnapshotIterator` merges three sources when scanning all nodes or all
relationships:

1. the transaction's own uncommitted writes (highest priority — read your own
   writes),
2. the version chains cached in the object cache (committed history), and
3. the persistent store (entities with no cached chain — their single
   persisted version carries its commit timestamp).

Each candidate id is resolved exactly once and yielded only if the resolved
state is visible and not deleted in the reader's snapshot.  Resolution goes
through the transaction's read path, which after the copy-on-write chain
rework is lock-free on every cached chain: a scan racing concurrent
committers never blocks on (or is blocked by) a chain lock.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Set

from repro.core.version_store import VersionStore
from repro.core.visibility import resolve_payload
from repro.graph.entity import (
    EntityKey,
    EntityKind,
    NodeData,
    RelationshipData,
)
from repro.graph.store_manager import StoreManager

#: Resolver signature: given an entity key, return the state visible to the
#: transaction (or ``None``).  Provided by the SI transaction so that the
#: iterator shares its read path (own writes, chains, persistent fallback).
EntityResolver = Callable[[EntityKey], Optional[object]]


class SnapshotIterator:
    """Whole-store iteration under a snapshot, honouring the reader's own writes."""

    def __init__(
        self,
        store: StoreManager,
        version_store: VersionStore,
        *,
        resolver: EntityResolver,
        own_writes: Dict[EntityKey, Optional[object]],
    ) -> None:
        self._store = store
        self._versions = version_store
        self._resolver = resolver
        self._own_writes = own_writes

    # -- public ------------------------------------------------------------------

    def nodes(self) -> Iterator[NodeData]:
        """Every node visible to the snapshot, own writes included."""
        for key in self._candidate_keys(EntityKind.NODE):
            resolved = self._resolver(key)
            if isinstance(resolved, NodeData):
                yield resolved

    def relationships(self) -> Iterator[RelationshipData]:
        """Every relationship visible to the snapshot, own writes included."""
        for key in self._candidate_keys(EntityKind.RELATIONSHIP):
            resolved = self._resolver(key)
            if isinstance(resolved, RelationshipData):
                yield resolved

    # -- internal -------------------------------------------------------------------

    def _candidate_keys(self, kind: EntityKind) -> Iterator[EntityKey]:
        """Union of ids from own writes, cached chains and the persistent store."""
        seen: Set[int] = set()
        for key in list(self._own_writes):
            if key.kind is kind and key.entity_id not in seen:
                seen.add(key.entity_id)
                yield key
        for key in self._versions.keys():
            if key.kind is kind and key.entity_id not in seen:
                seen.add(key.entity_id)
                yield key
        if kind is EntityKind.NODE:
            persistent_ids = self._store.iter_node_ids()
        else:
            persistent_ids = self._store.iter_relationship_ids()
        for entity_id in persistent_ids:
            if entity_id not in seen:
                seen.add(entity_id)
                yield EntityKey(kind, entity_id)


def count_visible(iterator: Iterator[object]) -> int:
    """Convenience helper used by statistics endpoints and tests."""
    return sum(1 for _item in iterator)
