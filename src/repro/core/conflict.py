"""The snapshot-isolation write rule.

Section 3 of the paper: "The write rule states that no two concurrent
transactions can update the same data item.  There are two ways to deal with
write-write conflicts, first-updater-wins that rollbacks the transaction that
is not the first to update the data item and first-committer-wins that
rollbacks the conflicting transaction that does not commit first."

The paper's implementation reuses Neo4j's long write locks to realise
**first-updater-wins** (Section 4); this module implements that policy and
also first-committer-wins so the two can be compared in the ablation
experiment (E3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import WriteWriteConflictError
from repro.graph.entity import EntityKey
from repro.locking.lock_manager import LockManager, LockMode


class ConflictPolicy(enum.Enum):
    """Strategies for enforcing the write rule."""

    FIRST_UPDATER_WINS = "first_updater_wins"
    FIRST_COMMITTER_WINS = "first_committer_wins"


@dataclass
class ConflictStats:
    """Counters describing detected write-write conflicts."""

    write_time_conflicts: int = 0
    commit_time_conflicts: int = 0

    def total(self) -> int:
        """Total number of conflicts detected."""
        return self.write_time_conflicts + self.commit_time_conflicts


class ConflictDetector:
    """Implements both write-rule policies on top of the shared lock manager."""

    def __init__(self, lock_manager: LockManager, policy: ConflictPolicy) -> None:
        self._locks = lock_manager
        self.policy = policy
        self.stats = ConflictStats()

    # -- write time (first-updater-wins) -----------------------------------------

    def on_write(
        self,
        txn_id: int,
        start_ts: int,
        key: EntityKey,
        read_newest_committed_ts: Callable[[], Optional[int]],
    ) -> None:
        """Check the write rule when a transaction first updates ``key``.

        Under first-updater-wins the entity's long write lock is acquired
        without waiting: if another active transaction already holds it, this
        transaction is not the first updater and is rolled back immediately.
        Having obtained the lock, a version committed by a concurrent
        transaction (commit timestamp newer than our snapshot) is still a
        conflict — the other updater already won by committing.

        ``read_newest_committed_ts`` is deliberately a callable, evaluated
        only *after* the long lock has been acquired.  This matters: versions
        of ``key`` are only ever installed by a transaction holding its long
        lock, so a timestamp read under the lock cannot race a concurrent
        install — whereas a timestamp snapshotted before acquisition can go
        stale while the previous holder finishes its commit, silently
        admitting a lost update.

        Under first-committer-wins nothing is checked here; validation happens
        at commit time.
        """
        if self.policy is not ConflictPolicy.FIRST_UPDATER_WINS:
            return
        if not self._locks.try_acquire(txn_id, key, LockMode.EXCLUSIVE):
            self.stats.write_time_conflicts += 1
            raise WriteWriteConflictError(
                f"transaction {txn_id} is not the first updater of {key} "
                "(another concurrent transaction holds its write lock)"
            )
        newest_committed_ts = read_newest_committed_ts()
        if newest_committed_ts is not None and newest_committed_ts > start_ts:
            self.stats.write_time_conflicts += 1
            raise WriteWriteConflictError(
                f"transaction {txn_id} (start_ts={start_ts}) conflicts with a "
                f"concurrent update of {key} committed at {newest_committed_ts}"
            )

    # -- commit time (first-committer-wins) -----------------------------------------

    def validate_at_commit(
        self,
        txn_id: int,
        start_ts: int,
        key: EntityKey,
        newest_committed_ts: Optional[int],
    ) -> None:
        """Check the write rule for one written entity at commit time.

        Only used by first-committer-wins: the transaction aborts if any
        entity it wrote has meanwhile been updated by a transaction that
        committed after this transaction's snapshot was taken.
        """
        if self.policy is not ConflictPolicy.FIRST_COMMITTER_WINS:
            return
        if newest_committed_ts is not None and newest_committed_ts > start_ts:
            self.stats.commit_time_conflicts += 1
            raise WriteWriteConflictError(
                f"transaction {txn_id} (start_ts={start_ts}) lost the commit race "
                f"for {key}: a concurrent update committed at {newest_committed_ts}"
            )

    def release_locks(self, txn_id: int) -> None:
        """Release every write lock held by a finished transaction."""
        self._locks.release_all(txn_id)
