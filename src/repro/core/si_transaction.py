"""Snapshot-isolation transactions.

A :class:`SnapshotTransaction` reads from the snapshot taken at its start
timestamp (the read rule), keeps its uncommitted writes in a private write
set (read-your-own-writes without exposing uncommitted data to others), and
checks the write rule on every first update of an entity (first-updater-wins,
via the engine's conflict detector).

Unlike the read-committed transaction it never takes read locks: the paper
removes Neo4j's short read locks entirely because the version chains make
them unnecessary.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.core.snapshot import Snapshot
from repro.core.versioned_iterator import SnapshotIterator
from repro.engine import EngineTransaction, TransactionState
from repro.errors import ReadOnlyTransactionError
from repro.graph.entity import (
    Direction,
    EntityKey,
    EntityKind,
    NodeData,
    RelationshipData,
)
from repro.graph.properties import PropertyValue


class SnapshotTransaction(EngineTransaction):
    """One transaction running under the snapshot-isolation engine."""

    def __init__(self, engine, snapshot: Snapshot, *, read_only: bool = False) -> None:
        super().__init__(snapshot.txn_id, read_only=read_only)
        self._engine = engine
        self.snapshot = snapshot
        #: Private uncommitted versions: entity key -> new state (None = delete).
        self._writes: Dict[EntityKey, Optional[object]] = {}
        #: Keys created by this transaction (no committed predecessor).
        self._created: Set[EntityKey] = set()
        #: Number of reads served (used by experiments).
        self.reads_performed = 0

    @property
    def start_ts(self) -> int:
        """Start timestamp of this transaction's snapshot."""
        return self.snapshot.start_ts

    # ------------------------------------------------------------------
    # reads (read rule + read-your-own-writes)
    # ------------------------------------------------------------------

    def _resolve(self, key: EntityKey) -> Optional[object]:
        """Read path shared by point reads, scans and index lookups."""
        self.reads_performed += 1
        if key in self._writes:
            return self._writes[key]
        return self._engine.read_committed_version(key, self.snapshot.start_ts)

    def read_node(self, node_id: int) -> Optional[NodeData]:
        self.ensure_open()
        resolved = self._resolve(EntityKey.node(node_id))
        return resolved if isinstance(resolved, NodeData) else None

    def read_relationship(self, rel_id: int) -> Optional[RelationshipData]:
        self.ensure_open()
        resolved = self._resolve(EntityKey.relationship(rel_id))
        return resolved if isinstance(resolved, RelationshipData) else None

    def iter_nodes(self) -> Iterator[NodeData]:
        self.ensure_open()
        return self._iterator().nodes()

    def iter_relationships(self) -> Iterator[RelationshipData]:
        self.ensure_open()
        return self._iterator().relationships()

    def _iterator(self) -> SnapshotIterator:
        return SnapshotIterator(
            self._engine.store,
            self._engine.versions,
            resolver=self._resolve,
            own_writes=self._writes,
        )

    # -- index-backed predicate reads ---------------------------------------------

    def find_nodes_by_label(self, label: str) -> Set[int]:
        self.ensure_open()
        result = self._engine.indexes.node_labels.visible(label, self.snapshot.start_ts)
        return self._overlay_nodes(result, lambda node: label in node.labels)

    def find_nodes_by_property(self, key: str, value: PropertyValue) -> Set[int]:
        self.ensure_open()
        result = self._engine.indexes.node_properties.visible(
            key, value, self.snapshot.start_ts
        )
        return self._overlay_nodes(result, lambda node: node.properties.get(key) == value)

    def find_relationships_by_property(self, key: str, value: PropertyValue) -> Set[int]:
        self.ensure_open()
        result = self._engine.indexes.relationship_properties.visible(
            key, value, self.snapshot.start_ts
        )
        return self._overlay_relationships(
            result, lambda rel: rel.properties.get(key) == value
        )

    def find_relationships_by_type(self, rel_type: str) -> Set[int]:
        """Ids of visible relationships of ``rel_type`` (snapshot-consistent)."""
        self.ensure_open()
        result = self._engine.indexes.relationship_types.visible(
            rel_type, self.snapshot.start_ts
        )
        return self._overlay_relationships(result, lambda rel: rel.rel_type == rel_type)

    def _overlay_nodes(self, result: Set[int], predicate) -> Set[int]:
        """Overlay the private write set onto an index lookup result."""
        for key, data in self._writes.items():
            if key.kind is not EntityKind.NODE:
                continue
            if data is None:
                result.discard(key.entity_id)
            elif predicate(data):
                result.add(key.entity_id)
            else:
                result.discard(key.entity_id)
        return result

    def _overlay_relationships(self, result: Set[int], predicate) -> Set[int]:
        for key, data in self._writes.items():
            if key.kind is not EntityKind.RELATIONSHIP:
                continue
            if data is None:
                result.discard(key.entity_id)
            elif predicate(data):
                result.add(key.entity_id)
            else:
                result.discard(key.entity_id)
        return result

    # -- traversal reads -------------------------------------------------------------

    def relationships_of(
        self,
        node_id: int,
        direction: Direction = Direction.BOTH,
        rel_types: Optional[Sequence[str]] = None,
    ) -> List[RelationshipData]:
        self.ensure_open()
        candidates = self._engine.indexes.adjacency.candidate_rel_ids(node_id)
        for key, data in self._writes.items():
            if key.kind is EntityKind.RELATIONSHIP and data is not None:
                if data.touches(node_id):
                    candidates.add(key.entity_id)
        wanted_types = set(rel_types) if rel_types else None
        result: List[RelationshipData] = []
        for rel_id in sorted(candidates):
            relationship = self.read_relationship(rel_id)
            if relationship is None:
                continue
            if not direction.matches(node_id, relationship.start_node, relationship.end_node):
                continue
            if wanted_types is not None and relationship.rel_type not in wanted_types:
                continue
            result.append(relationship)
        return result

    # ------------------------------------------------------------------
    # writes (write rule, first-updater-wins)
    # ------------------------------------------------------------------

    def put_node(self, node: NodeData, *, create: bool = False) -> None:
        self.ensure_open()
        self._check_writable()
        key = node.key
        self._register_write(key, create=create)
        self._writes[key] = node

    def put_relationship(self, relationship: RelationshipData, *, create: bool = False) -> None:
        self.ensure_open()
        self._check_writable()
        key = relationship.key
        self._register_write(key, create=create)
        self._writes[key] = relationship

    def delete_node(self, node_id: int) -> None:
        self.ensure_open()
        self._check_writable()
        key = EntityKey.node(node_id)
        self._register_write(key, create=False)
        self._writes[key] = None

    def delete_relationship(self, rel_id: int) -> None:
        self.ensure_open()
        self._check_writable()
        key = EntityKey.relationship(rel_id)
        self._register_write(key, create=False)
        self._writes[key] = None

    def _register_write(self, key: EntityKey, *, create: bool) -> None:
        """First-updater-wins check on the first write of each entity."""
        if key in self._writes:
            return
        if create:
            self._created.add(key)
            # A brand-new entity cannot conflict: its id has never been
            # visible to any other transaction.
            return
        self._engine.check_write_conflict(self, key)

    def _check_writable(self) -> None:
        if self.read_only:
            raise ReadOnlyTransactionError(
                f"transaction {self.txn_id} was opened read-only"
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def commit(self) -> None:
        self.ensure_open()
        try:
            self._engine.commit_transaction(self)
            self.state = TransactionState.COMMITTED
        except BaseException:
            self._engine.abort_transaction(self)
            self.state = TransactionState.ABORTED
            raise

    def rollback(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            return
        self._engine.abort_transaction(self)
        self.state = TransactionState.ABORTED

    # ------------------------------------------------------------------
    # commit support (used by the engine)
    # ------------------------------------------------------------------

    def pending_writes(self) -> Dict[EntityKey, Optional[object]]:
        """The private write set (key -> new state, ``None`` for deletes)."""
        return dict(self._writes)

    def created_keys(self) -> Set[EntityKey]:
        """Keys of entities created by this transaction."""
        return set(self._created)

    def has_writes(self) -> bool:
        """Whether the transaction buffered any write."""
        return bool(self._writes)
