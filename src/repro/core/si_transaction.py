"""Snapshot-isolation transactions.

A :class:`SnapshotTransaction` reads from the snapshot taken at its start
timestamp (the read rule), keeps its uncommitted writes in a private write
set (read-your-own-writes without exposing uncommitted data to others), and
checks the write rule on every first update of an entity (first-updater-wins,
via the engine's conflict detector).

Unlike the read-committed transaction it never takes read locks: the paper
removes Neo4j's short read locks entirely because the version chains make
them unnecessary.

Because a snapshot is immutable, everything a transaction resolves from the
*committed* state — point-lookup payloads and per-node adjacency lists — can
be cached for the transaction's lifetime without any invalidation protocol:
no commit, GC pass or chain swap can change what this snapshot sees.  The
caches hold only committed resolutions; the private write set is overlaid on
every read, so read-your-own-writes still holds for entities the transaction
itself touches.  ``friends_of_friends``-style traversals, which revisit the
same nodes across hops, stop re-resolving the same chains entirely.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.snapshot import Snapshot
from repro.core.versioned_iterator import SnapshotIterator
from repro.engine import EngineTransaction, TransactionState
from repro.errors import ReadOnlyTransactionError, classify_abort
from repro.graph.entity import (
    Direction,
    EntityKey,
    EntityKind,
    NodeData,
    RelationshipData,
)
from repro.graph.properties import PropertyValue
from repro.index.property_index import hashable_value

#: Sentinel distinguishing "cached as absent" from "not cached".
_MISSING = object()

#: Upper bound on entries per snapshot-local cache; a transaction that reads
#: more distinct entities than this simply stops inserting (hits keep
#: working), so a whole-store scan cannot balloon a long transaction.
SNAPSHOT_CACHE_LIMIT = 65_536


class SnapshotTransaction(EngineTransaction):
    """One transaction running under the snapshot-isolation engine."""

    def __init__(
        self,
        engine,
        snapshot: Snapshot,
        *,
        read_only: bool = False,
        cc_record=None,
        safe_snapshot=None,
    ) -> None:
        super().__init__(snapshot.txn_id, read_only=read_only)
        self._engine = engine
        self.snapshot = snapshot
        #: Concurrency-control record (SSI tracking; ``None`` under plain SI
        #: and for read-only serializable transactions, which register no
        #: reads and can never be aborted).
        self.cc_record = cc_record
        self._cc = engine.cc
        self._track_reads = cc_record is not None and self._cc.tracks_reads
        #: Commit timestamp, set by the engine once a versioned commit
        #: publishes (``None`` for writeless or uncommitted transactions).
        #: Experiments and the history-recording test harness read it.
        self.commit_ts: Optional[int] = None
        #: Safe-snapshot handle (read-only serializable transactions whose
        #: snapshot is not yet proven safe).  While present, reads are
        #: buffered locally so a forced upgrade can register them
        #: retroactively; once the snapshot resolves safe the handle is
        #: dropped and the read path pays nothing again.
        self.safe_snapshot = safe_snapshot
        self._pending_reader = safe_snapshot
        #: Private uncommitted versions: entity key -> new state (None = delete).
        self._writes: Dict[EntityKey, Optional[object]] = {}
        #: Keys created by this transaction (no committed predecessor).
        self._created: Set[EntityKey] = set()
        #: Number of reads served (used by experiments).
        self.reads_performed = 0
        #: Snapshot-local caches (safe because the snapshot is immutable);
        #: ``None`` when the engine was opened with the cache disabled.
        enabled = getattr(engine, "snapshot_read_cache", True)
        self._payload_cache: Optional[Dict[EntityKey, object]] = {} if enabled else None
        self._adjacency_cache: Optional[Dict[int, Tuple[RelationshipData, ...]]] = (
            {} if enabled else None
        )
        #: Memo of *filtered* adjacency answers keyed by (node, direction,
        #: types), valid only while the write set is empty.  The raw
        #: adjacency cache above saves chain resolution but a hit still pays
        #: the full direction/type filter loop per call, which benchmarking
        #: showed costs as much as re-resolving — this memo makes a repeat
        #: ``relationships_of`` a single dict probe (see
        #: :meth:`relationships_of`).
        self._filtered_adjacency_cache: Optional[Dict[tuple, List[RelationshipData]]] = (
            {} if enabled else None
        )
        #: Cache effectiveness counters (surfaced by bench_e11 and tests).
        self.snapshot_cache_hits = 0
        self.snapshot_cache_misses = 0
        #: Observability trace (set by the engine for sampled transactions).
        self.trace = None
        #: Classified cause when :meth:`commit` aborts (``None`` for explicit
        #: rollbacks); feeds the labelled abort counter and the trace.
        self.abort_reason: Optional[str] = None

    @property
    def start_ts(self) -> int:
        """Start timestamp of this transaction's snapshot."""
        return self.snapshot.start_ts

    # ------------------------------------------------------------------
    # reads (read rule + read-your-own-writes)
    # ------------------------------------------------------------------

    def _resolve(self, key: EntityKey) -> Optional[object]:
        """Read path shared by point reads, scans and index lookups.

        Own writes win; committed resolutions are memoised per snapshot
        (``None`` — absent or invisible — is cached too, since within one
        snapshot that answer can never change).
        """
        self.reads_performed += 1
        if key in self._writes:
            return self._writes[key]
        return self._resolve_committed(key)

    def _resolve_committed(self, key: EntityKey) -> Optional[object]:
        """Committed-state resolution through the snapshot-local payload cache.

        Shared by point reads (:meth:`_resolve`, after the own-writes check)
        and the adjacency path (:meth:`_committed_adjacency`), so a chain
        resolved while expanding a node is never re-resolved by a later
        point read of the same entity — and vice versa.

        This is also the single choke point where serializable transactions
        register their SIREADs: every committed-state resolution — point
        read, index lookup materialisation, scan, traversal — funnels through
        here, so one hook covers them all.  Own-write reads never reach this
        method and correctly register nothing.
        """
        if self._track_reads:
            self._cc.register_point_read(self.cc_record, key)
        elif self._pending_reader is not None:
            handle = self._pending_reader
            if not (handle.safe or handle.upgrade_required or handle.upgraded):
                # Hot path of a pending safe-snapshot reader: buffer the key
                # locally (only this thread touches the buffer) and move on.
                handle.record.read_keys.add(key)
            else:
                self._observe_pending_read(key, None)
        cache = self._payload_cache
        if cache is None:
            return self._engine.read_committed_version(key, self.snapshot.start_ts)
        cached = cache.get(key, _MISSING)
        if cached is not _MISSING:
            self.snapshot_cache_hits += 1
            return cached
        resolved = self._engine.read_committed_version(key, self.snapshot.start_ts)
        self.snapshot_cache_misses += 1
        if len(cache) < SNAPSHOT_CACHE_LIMIT:
            cache[key] = resolved
        return resolved

    # -- batch reads (vectorized executor) -----------------------------------

    def _resolve_many(self, keys: Sequence[EntityKey]) -> List[Optional[object]]:
        """Batch form of :meth:`_resolve`: own writes overlaid, then one
        batched committed-state resolution for everything else."""
        self.reads_performed += len(keys)
        writes = self._writes
        if not writes:
            return self._resolve_committed_many(keys)
        resolved: List[Optional[object]] = [None] * len(keys)
        committed_keys: List[EntityKey] = []
        committed_indexes: List[int] = []
        for index, key in enumerate(keys):
            if key in writes:
                resolved[index] = writes[key]
            else:
                committed_indexes.append(index)
                committed_keys.append(key)
        if committed_keys:
            for index, value in zip(
                committed_indexes, self._resolve_committed_many(committed_keys)
            ):
                resolved[index] = value
        return resolved

    def _resolve_committed_many(self, keys: Sequence[EntityKey]) -> List[Optional[object]]:
        """Batch committed-state resolution: the whole batch pays one SIREAD
        registration visit (one tracker-mutex acquisition under SSI) and one
        engine-level chain-resolution pass, instead of one of each per key.

        Semantically identical to calling :meth:`_resolve_committed` per key
        — same SIREADs registered, same cache interactions — just amortised.
        """
        if self._track_reads:
            self._cc.register_point_reads(self.cc_record, keys)
        elif self._pending_reader is not None:
            handle = self._pending_reader
            if not (handle.safe or handle.upgrade_required or handle.upgraded):
                handle.record.read_keys.update(keys)
            else:
                for key in keys:
                    self._observe_pending_read(key, None)
        cache = self._payload_cache
        start_ts = self.snapshot.start_ts
        if cache is None:
            return self._engine.read_committed_versions(keys, start_ts)
        resolved: List[Optional[object]] = [None] * len(keys)
        miss_keys: List[EntityKey] = []
        miss_indexes: List[int] = []
        hits = 0
        for index, key in enumerate(keys):
            cached = cache.get(key, _MISSING)
            if cached is not _MISSING:
                hits += 1
                resolved[index] = cached
            else:
                miss_indexes.append(index)
                miss_keys.append(key)
        self.snapshot_cache_hits += hits
        if miss_keys:
            loaded = self._engine.read_committed_versions(miss_keys, start_ts)
            self.snapshot_cache_misses += len(miss_keys)
            for index, key, value in zip(miss_indexes, miss_keys, loaded):
                resolved[index] = value
                if len(cache) < SNAPSHOT_CACHE_LIMIT:
                    cache[key] = value
        return resolved

    def read_nodes_many(self, node_ids: Sequence[int]) -> List[Optional[NodeData]]:
        self.ensure_open()
        resolved = self._resolve_many([EntityKey.node(i) for i in node_ids])
        return [
            value if isinstance(value, NodeData) else None for value in resolved
        ]

    def read_relationships_many(
        self, rel_ids: Sequence[int]
    ) -> List[Optional[RelationshipData]]:
        self.ensure_open()
        resolved = self._resolve_many(
            [EntityKey.relationship(i) for i in rel_ids]
        )
        return [
            value if isinstance(value, RelationshipData) else None
            for value in resolved
        ]

    def read_node(self, node_id: int) -> Optional[NodeData]:
        self.ensure_open()
        resolved = self._resolve(EntityKey.node(node_id))
        return resolved if isinstance(resolved, NodeData) else None

    def read_relationship(self, rel_id: int) -> Optional[RelationshipData]:
        self.ensure_open()
        resolved = self._resolve(EntityKey.relationship(rel_id))
        return resolved if isinstance(resolved, RelationshipData) else None

    def iter_nodes(self) -> Iterator[NodeData]:
        self.ensure_open()
        self._register_predicate(("all_nodes",))
        return self._iterator().nodes()

    def iter_relationships(self) -> Iterator[RelationshipData]:
        self.ensure_open()
        self._register_predicate(("all_rels",))
        return self._iterator().relationships()

    def _register_predicate(self, predicate) -> None:
        """SSI predicate-read registration (no-op unless the policy tracks reads).

        Predicates — label scans, property lookups, type scans, whole-store
        iterations, adjacency expansions — are what catch phantoms: a
        concurrent committer whose change moves an entity into or out of the
        registered predicate forms an rw-antidependency with this
        transaction even though no common entity was point-read.
        """
        if self._track_reads:
            self._cc.register_predicate_read(self.cc_record, predicate)
        elif self._pending_reader is not None:
            self._observe_pending_read(None, predicate)

    def _observe_pending_read(self, key, predicate) -> None:
        """Read bookkeeping for a safe-snapshot reader (tentpole fast path).

        Until the snapshot resolves, reads are buffered into the handle's
        local record — a plain set add, touched only by this thread, so the
        untracked read path stays mutex-free.  When the census drains the
        handle flips safe and this method unhooks itself entirely; when a
        writer was aborted on this reader's behalf the handle demands an
        upgrade, after which every buffered and future read is registered
        as a real SIREAD so later committers get precise conflict checks.
        """
        handle = self._pending_reader
        if handle.safe and not handle.upgraded:
            self._pending_reader = None
            return
        if handle.upgrade_required and not handle.upgraded:
            self._cc.upgrade_reader(handle)
        if handle.upgraded:
            if key is not None:
                self._cc.register_point_read(handle.record, key)
            if predicate is not None:
                self._cc.register_predicate_read(handle.record, predicate)
        else:
            if key is not None:
                handle.record.read_keys.add(key)
            if predicate is not None:
                handle.record.predicates.add(predicate)

    def _iterator(self) -> SnapshotIterator:
        return SnapshotIterator(
            self._engine.store,
            self._engine.versions,
            resolver=self._resolve,
            own_writes=self._writes,
        )

    # -- index-backed predicate reads ---------------------------------------------

    def find_nodes_by_label(self, label: str) -> Set[int]:
        self.ensure_open()
        self._register_predicate(("label", label))
        result = self._engine.indexes.node_labels.visible(label, self.snapshot.start_ts)
        return self._overlay_nodes(result, lambda node: label in node.labels)

    def find_nodes_by_property(self, key: str, value: PropertyValue) -> Set[int]:
        self.ensure_open()
        self._register_predicate(("node_prop", key, hashable_value(value)))
        result = self._engine.indexes.node_properties.visible(
            key, value, self.snapshot.start_ts
        )
        return self._overlay_nodes(result, lambda node: node.properties.get(key) == value)

    def find_relationships_by_property(self, key: str, value: PropertyValue) -> Set[int]:
        self.ensure_open()
        self._register_predicate(("rel_prop", key, hashable_value(value)))
        result = self._engine.indexes.relationship_properties.visible(
            key, value, self.snapshot.start_ts
        )
        return self._overlay_relationships(
            result, lambda rel: rel.properties.get(key) == value
        )

    def find_relationships_by_type(self, rel_type: str) -> Set[int]:
        """Ids of visible relationships of ``rel_type`` (snapshot-consistent)."""
        self.ensure_open()
        self._register_predicate(("rel_type", rel_type))
        result = self._engine.indexes.relationship_types.visible(
            rel_type, self.snapshot.start_ts
        )
        return self._overlay_relationships(result, lambda rel: rel.rel_type == rel_type)

    def _overlay_nodes(self, result: Set[int], predicate) -> Set[int]:
        """Overlay the private write set onto an index lookup result."""
        for key, data in self._writes.items():
            if key.kind is not EntityKind.NODE:
                continue
            if data is None:
                result.discard(key.entity_id)
            elif predicate(data):
                result.add(key.entity_id)
            else:
                result.discard(key.entity_id)
        return result

    def _overlay_relationships(self, result: Set[int], predicate) -> Set[int]:
        for key, data in self._writes.items():
            if key.kind is not EntityKind.RELATIONSHIP:
                continue
            if data is None:
                result.discard(key.entity_id)
            elif predicate(data):
                result.add(key.entity_id)
            else:
                result.discard(key.entity_id)
        return result

    # -- traversal reads -------------------------------------------------------------

    def _committed_adjacency(self, node_id: int) -> Tuple[RelationshipData, ...]:
        """Snapshot-visible committed relationships of one node, by rel id.

        Safe to cache for the transaction's lifetime: a candidate added to
        the global adjacency index by a later committer resolves to a version
        newer than this snapshot (invisible), and GC never reclaims a version
        an active snapshot can still select — so the resolved list is a pure
        function of (node, snapshot).
        """
        # An adjacency expansion is a predicate read over "relationships
        # touching this node": a concurrent committer attaching or detaching
        # a relationship here must form an rw edge even though the new
        # relationship id was never point-read.
        self._register_predicate(("adjacency", node_id))
        cache = self._adjacency_cache
        if cache is not None:
            cached = cache.get(node_id)
            if cached is not None:
                self.snapshot_cache_hits += 1
                # Keep the experiments' read counter consistent with the
                # payload cache, which counts hits as served reads too.
                self.reads_performed += len(cached)
                return cached
        # Untracked snapshot readers share one engine-level resolved cache:
        # its validity stamp makes an entry a pure function of (node,
        # snapshot), and with no SIREADs to register a hit is observably
        # identical to resolving.  SSI transactions skip it — they need the
        # per-relationship registrations the resolving path performs.
        untracked = not self._track_reads and self._pending_reader is None
        start_ts = self.snapshot.start_ts
        if untracked:
            shared = self._engine.cached_committed_adjacency(
                node_id, None, start_ts
            )
            if shared is not None:
                self.snapshot_cache_hits += 1
                self.reads_performed += len(shared)
                if cache is not None and len(cache) < SNAPSHOT_CACHE_LIMIT:
                    cache[node_id] = shared
                return shared
        candidates = self._engine.indexes.adjacency.candidate_rel_ids(node_id)
        resolved: List[RelationshipData] = []
        for rel_id in sorted(candidates):
            # Through the shared payload cache: a relationship resolved here
            # is free for later point reads of the same id (and vice versa).
            payload = self._resolve_committed(EntityKey.relationship(rel_id))
            if isinstance(payload, RelationshipData):
                resolved.append(payload)
        self.reads_performed += len(candidates)
        result = tuple(resolved)
        if untracked:
            self._engine.store_committed_adjacency(
                node_id, None, start_ts, result
            )
        if cache is not None:
            self.snapshot_cache_misses += 1
            if len(cache) < SNAPSHOT_CACHE_LIMIT:
                cache[node_id] = result
        return result

    def _committed_adjacency_many(
        self, node_ids: Sequence[int]
    ) -> List[Tuple[RelationshipData, ...]]:
        """Batch form of :meth:`_committed_adjacency`.

        One predicate-registration visit covers every expanded node and one
        batched resolution covers every candidate relationship, so a
        batch-expand of N sources pays two tracker-mutex acquisitions under
        SSI instead of N + (total candidate) ones.
        """
        predicates = [("adjacency", node_id) for node_id in node_ids]
        if self._track_reads:
            self._cc.register_predicate_reads(self.cc_record, predicates)
        elif self._pending_reader is not None:
            handle = self._pending_reader
            if not (handle.safe or handle.upgrade_required or handle.upgraded):
                handle.record.predicates.update(predicates)
            else:
                for predicate in predicates:
                    self._observe_pending_read(None, predicate)
        cache = self._adjacency_cache
        untracked = not self._track_reads and self._pending_reader is None
        start_ts = self.snapshot.start_ts
        engine = self._engine
        results: List[Optional[Tuple[RelationshipData, ...]]] = [None] * len(node_ids)
        miss_ids: List[int] = []
        miss_indexes: List[int] = []
        for index, node_id in enumerate(node_ids):
            cached = cache.get(node_id) if cache is not None else None
            if cached is None and untracked:
                cached = engine.cached_committed_adjacency(
                    node_id, None, start_ts
                )
                if cached is not None and cache is not None \
                        and len(cache) < SNAPSHOT_CACHE_LIMIT:
                    cache[node_id] = cached
            if cached is not None:
                self.snapshot_cache_hits += 1
                self.reads_performed += len(cached)
                results[index] = cached
            else:
                miss_indexes.append(index)
                miss_ids.append(node_id)
        if miss_ids:
            candidate_rel_ids = self._engine.indexes.adjacency
            per_node: List[List[int]] = [
                sorted(candidate_rel_ids.candidate_rel_ids(node_id))
                for node_id in miss_ids
            ]
            flat_keys = [
                EntityKey.relationship(rel_id)
                for rel_ids in per_node
                for rel_id in rel_ids
            ]
            resolved = self._resolve_committed_many(flat_keys) if flat_keys else []
            cursor = 0
            for index, node_id, rel_ids in zip(miss_indexes, miss_ids, per_node):
                count = len(rel_ids)
                window = resolved[cursor:cursor + count]
                cursor += count
                adjacency = tuple(
                    payload
                    for payload in window
                    if isinstance(payload, RelationshipData)
                )
                self.reads_performed += count
                results[index] = adjacency
                if untracked:
                    engine.store_committed_adjacency(
                        node_id, None, start_ts, adjacency
                    )
                if cache is not None:
                    self.snapshot_cache_misses += 1
                    if len(cache) < SNAPSHOT_CACHE_LIMIT:
                        cache[node_id] = adjacency
        return results  # type: ignore[return-value]

    def _overlay_and_filter(
        self,
        node_id: int,
        committed: Tuple[RelationshipData, ...],
        direction: Direction,
        wanted_types: Optional[Set[str]],
    ) -> List[RelationshipData]:
        """Write-set overlay + direction/type filter of one adjacency list."""
        # Overlay the private write set: relationship endpoints are immutable,
        # so an own write either replaces a committed entry (property update),
        # adds a new one (create) or removes one (delete).
        relationships: Sequence[RelationshipData] = committed
        if self._writes:
            merged: Dict[int, RelationshipData] = {
                relationship.rel_id: relationship for relationship in committed
            }
            changed = False
            for key, data in self._writes.items():
                if key.kind is not EntityKind.RELATIONSHIP:
                    continue
                if data is None:
                    if merged.pop(key.entity_id, None) is not None:
                        changed = True
                elif data.touches(node_id):
                    merged[key.entity_id] = data
                    changed = True
            if changed:
                relationships = [merged[rel_id] for rel_id in sorted(merged)]
        # Adjacency candidates always touch the node, so BOTH never filters
        # on direction — skip the per-relationship endpoint checks.
        if direction is Direction.BOTH:
            if wanted_types is None:
                return list(relationships)
            return [
                relationship
                for relationship in relationships
                if relationship.rel_type in wanted_types
            ]
        result: List[RelationshipData] = []
        for relationship in relationships:
            if not direction.matches(node_id, relationship.start_node, relationship.end_node):
                continue
            if wanted_types is not None and relationship.rel_type not in wanted_types:
                continue
            result.append(relationship)
        return result

    def relationships_of(
        self,
        node_id: int,
        direction: Direction = Direction.BOTH,
        rel_types: Optional[Sequence[str]] = None,
    ) -> List[RelationshipData]:
        self.ensure_open()
        # Fast path for repeat expansions: while the transaction has written
        # nothing, the *filtered* answer is as immutable as the snapshot, so
        # a traversal revisiting a node skips the overlay and filter loops
        # entirely.  (Predicate/SIREAD registration already happened when the
        # entry was populated — both are per-transaction sets, so repeats
        # register nothing new anyway.)
        memo = self._filtered_adjacency_cache
        memo_key = None
        if memo is not None and not self._writes:
            memo_key = (node_id, direction, tuple(rel_types) if rel_types else None)
            cached = memo.get(memo_key)
            if cached is None and not self._track_reads \
                    and self._pending_reader is None:
                cached = self._engine.cached_committed_adjacency(
                    node_id, (direction, memo_key[2]), self.snapshot.start_ts
                )
                if cached is not None and len(memo) < SNAPSHOT_CACHE_LIMIT:
                    memo[memo_key] = cached
            if cached is not None:
                self.snapshot_cache_hits += 1
                self.reads_performed += len(cached)
                return list(cached)
        committed = self._committed_adjacency(node_id)
        wanted_types = set(rel_types) if rel_types else None
        result = self._overlay_and_filter(node_id, committed, direction, wanted_types)
        if memo_key is not None:
            if not self._track_reads and self._pending_reader is None:
                self._engine.store_committed_adjacency(
                    node_id, (direction, memo_key[2]),
                    self.snapshot.start_ts, tuple(result),
                )
            if len(memo) < SNAPSHOT_CACHE_LIMIT:
                memo[memo_key] = result
                return list(result)
        return result

    def relationships_of_many(
        self,
        node_ids: Sequence[int],
        direction: Direction = Direction.BOTH,
        rel_types: Optional[Sequence[str]] = None,
    ) -> List[List[RelationshipData]]:
        """Visible relationships of each node, resolved as one batch."""
        self.ensure_open()
        wanted_types = set(rel_types) if rel_types else None
        memo = self._filtered_adjacency_cache
        if memo is None or self._writes:
            committed_lists = self._committed_adjacency_many(node_ids)
            return [
                self._overlay_and_filter(node_id, committed, direction, wanted_types)
                for node_id, committed in zip(node_ids, committed_lists)
            ]
        types_key = tuple(rel_types) if rel_types else None
        variant = (direction, types_key)
        untracked = not self._track_reads and self._pending_reader is None
        start_ts = self.snapshot.start_ts
        engine = self._engine
        results: List[Optional[List[RelationshipData]]] = [None] * len(node_ids)
        miss_ids: List[int] = []
        miss_indexes: List[int] = []
        for index, node_id in enumerate(node_ids):
            cached = memo.get((node_id, direction, types_key))
            if cached is None and untracked:
                cached = engine.cached_committed_adjacency(
                    node_id, variant, start_ts
                )
                if cached is not None and len(memo) < SNAPSHOT_CACHE_LIMIT:
                    memo[(node_id, direction, types_key)] = cached
            if cached is not None:
                self.snapshot_cache_hits += 1
                self.reads_performed += len(cached)
                results[index] = list(cached)
            else:
                miss_indexes.append(index)
                miss_ids.append(node_id)
        if miss_ids:
            committed_lists = self._committed_adjacency_many(miss_ids)
            for index, node_id, committed in zip(miss_indexes, miss_ids, committed_lists):
                filtered = self._overlay_and_filter(
                    node_id, committed, direction, wanted_types
                )
                if untracked:
                    engine.store_committed_adjacency(
                        node_id, variant, start_ts, tuple(filtered)
                    )
                if len(memo) < SNAPSHOT_CACHE_LIMIT:
                    memo[(node_id, direction, types_key)] = filtered
                    results[index] = list(filtered)
                else:
                    results[index] = filtered
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # writes (write rule, first-updater-wins)
    # ------------------------------------------------------------------

    def put_node(self, node: NodeData, *, create: bool = False) -> None:
        self.ensure_open()
        self._check_writable()
        key = node.key
        self._register_write(key, create=create)
        self._writes[key] = node

    def put_relationship(self, relationship: RelationshipData, *, create: bool = False) -> None:
        self.ensure_open()
        self._check_writable()
        key = relationship.key
        self._register_write(key, create=create)
        self._writes[key] = relationship

    def delete_node(self, node_id: int) -> None:
        self.ensure_open()
        self._check_writable()
        key = EntityKey.node(node_id)
        self._register_write(key, create=False)
        self._writes[key] = None

    def delete_relationship(self, rel_id: int) -> None:
        self.ensure_open()
        self._check_writable()
        key = EntityKey.relationship(rel_id)
        self._register_write(key, create=False)
        self._writes[key] = None

    def _register_write(self, key: EntityKey, *, create: bool) -> None:
        """First-updater-wins check on the first write of each entity."""
        if key in self._writes:
            return
        if create:
            self._created.add(key)
            # A brand-new entity cannot conflict: its id has never been
            # visible to any other transaction.
            return
        self._engine.check_write_conflict(self, key)

    def _check_writable(self) -> None:
        if self.read_only:
            raise ReadOnlyTransactionError(
                f"transaction {self.txn_id} was opened read-only"
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def commit(self) -> None:
        self.ensure_open()
        try:
            self._engine.commit_transaction(self)
            self.state = TransactionState.COMMITTED
        except BaseException as exc:
            self.abort_reason = classify_abort(exc)
            self._engine.abort_transaction(self)
            self.state = TransactionState.ABORTED
            raise

    def rollback(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            return
        self._engine.abort_transaction(self)
        self.state = TransactionState.ABORTED

    # ------------------------------------------------------------------
    # commit support (used by the engine)
    # ------------------------------------------------------------------

    def pending_writes(self) -> Dict[EntityKey, Optional[object]]:
        """The private write set (key -> new state, ``None`` for deletes)."""
        return dict(self._writes)

    def created_keys(self) -> Set[EntityKey]:
        """Keys of entities created by this transaction."""
        return set(self._created)

    def has_writes(self) -> bool:
        """Whether the transaction buffered any write."""
        return bool(self._writes)

    # ------------------------------------------------------------------
    # snapshot-local cache introspection
    # ------------------------------------------------------------------

    def snapshot_cache_stats(self) -> Dict[str, int]:
        """Effectiveness counters of the snapshot-local read caches."""
        return {
            "hits": self.snapshot_cache_hits,
            "misses": self.snapshot_cache_misses,
            "payload_entries": len(self._payload_cache or ()),
            "adjacency_entries": len(self._adjacency_cache or ()),
            "filtered_adjacency_entries": len(self._filtered_adjacency_cache or ()),
        }
