"""Version store: the object cache's view of version chains.

The paper keeps versions "in the Object Cache of Neo4j"; accordingly this
module is a thin layer over :class:`repro.graph.object_cache.ObjectCache`
mapping entity keys to :class:`~repro.core.version.VersionChain` objects.

Eviction policy: a chain is only evictable when it holds exactly one
non-tombstone version, because that single version is guaranteed to be the
one persisted in the store (the store keeps only the newest committed
version) and can therefore be reloaded on demand.  Chains with history — the
versions the persistent store does *not* have — are pinned in memory until
garbage collection shrinks them back to one version.

Locking: the get-or-load path needs a lock only to keep two concurrent
loaders of the *same* key from installing two chains.  The lock is therefore
striped by entity key, so concurrent committers installing versions for
disjoint keys never contend here (the cache itself is internally
thread-safe).  ``stripes=1`` restores the seed's single global lock.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.version import Version, VersionChain, VersionPayload
from repro.graph.entity import EntityKey, EntityKind
from repro.graph.object_cache import ObjectCache

#: A loader returns the persisted state and its commit timestamp, or ``None``.
ChainLoader = Callable[[], Optional[Tuple[VersionPayload, int]]]


def _chain_evictable(_key: EntityKey, chain: VersionChain) -> bool:
    """Eviction predicate handed to the object cache (see module docstring)."""
    published = chain.snapshot()
    return len(published) == 1 and not published[0].is_tombstone


def stripe_of(key: EntityKey, stripes: int) -> int:
    """Deterministic stripe index of an entity key.

    Consecutive entity ids land on distinct stripes, so disjoint working sets
    spread across the stripe space instead of hashing together, and each
    entity kind can occupy *every* stripe (relationship ids are an
    independent sequence, rotated half a ring so node i and relationship i
    usually differ).
    """
    offset = stripes // 2 if key.kind is EntityKind.RELATIONSHIP else 0
    return (key.entity_id + offset) % stripes


class VersionStore:
    """All in-memory version chains, keyed by entity."""

    def __init__(self, *, cache_capacity: int = 100_000, stripes: int = 16) -> None:
        if stripes < 1:
            raise ValueError("version store needs at least one lock stripe")
        self._cache = ObjectCache(cache_capacity, evictable=_chain_evictable)
        self._locks = [threading.RLock() for _ in range(stripes)]

    def _lock_for(self, key: EntityKey) -> threading.RLock:
        return self._locks[stripe_of(key, len(self._locks))]

    @property
    def cache(self) -> ObjectCache:
        """The underlying object cache (exposed for statistics)."""
        return self._cache

    # -- lookup ------------------------------------------------------------------

    def get_chain(self, key: EntityKey) -> Optional[VersionChain]:
        """The chain for ``key`` if it is currently cached, else ``None``."""
        return self._cache.get(key)

    def get_or_load(self, key: EntityKey, loader: ChainLoader) -> Optional[VersionChain]:
        """The chain for ``key``, loading the persisted version on a miss.

        ``loader`` reads the persistent store; when it returns ``None`` the
        entity does not exist anywhere and no chain is created.

        The hit path is lock-free: a cached chain is returned from a plain
        dict probe without touching the stripe lock or the cache's LRU lock
        (chains read often but written rarely may therefore age out under
        pressure — harmless, because only single-version chains whose state
        the persistent store also holds are evictable).  Only a miss takes
        the stripe lock, re-checks, and runs the loader.
        """
        chain = self._cache.peek(key)
        if chain is not None:
            return chain
        with self._lock_for(key):
            chain = self._cache.get(key)
            if chain is not None:
                return chain
            loaded = loader()
            if loaded is None:
                return None
            payload, commit_ts = loaded
            chain = VersionChain(key)
            chain.add_committed(Version(key, payload, commit_ts))
            self._cache.put(key, chain)
            return chain

    def get_many(
        self,
        keys: Sequence[EntityKey],
        loader_for: Callable[[EntityKey], ChainLoader],
    ) -> List[Optional[VersionChain]]:
        """The chains for ``keys``, in order (``None`` for absent entities).

        The batch companion of :meth:`get_or_load`: every cached chain is
        collected through the lock-free ``peek`` fast path first, and only
        the misses fall back to the locking get-or-load — so a batch that is
        fully resident never touches a stripe lock at all.  ``loader_for``
        maps a missed key to its persistent-store loader.
        """
        peek = self._cache.peek
        chains: List[Optional[VersionChain]] = []
        append = chains.append
        misses: List[int] = []
        for index, key in enumerate(keys):
            chain = peek(key)
            if chain is None:
                misses.append(index)
            append(chain)
        for index in misses:
            key = keys[index]
            chains[index] = self.get_or_load(key, loader_for(key))
        return chains

    def ensure_chain(self, key: EntityKey) -> VersionChain:
        """The chain for ``key``, creating an empty one if none is cached."""
        with self._lock_for(key):
            chain = self._cache.get(key)
            if chain is None:
                chain = VersionChain(key)
                self._cache.put(key, chain)
            return chain

    # -- commit path ------------------------------------------------------------

    def install_committed(
        self, key: EntityKey, version: Version, loader: ChainLoader
    ) -> Optional[Version]:
        """Install a committed version into the resident chain; returns the
        superseded version (the previous newest), if any.

        Runs entirely under the key's stripe lock — the same lock the
        miss-path loader takes — so the install always lands in the chain
        the cache actually holds.  The lock-free :meth:`get_or_load` hit
        path must NOT be used for installs: a peeked chain carries no LRU
        protection and can be concurrently evicted, and a version added to
        an evicted (orphaned) chain would be silently lost when a reader's
        loader rebuilds the chain from the not-yet-persisted store state.
        The closing ``put`` re-inserts the chain (it may have been evicted
        between a reader's probe and this commit) and refreshes its LRU
        position in one step.
        """
        with self._lock_for(key):
            chain = self._cache.get(key)
            if chain is None:
                chain = VersionChain(key)
                loaded = loader()
                if loaded is not None:
                    payload, commit_ts = loaded
                    chain.add_committed(Version(key, payload, commit_ts))
            superseded = chain.add_committed(version)
            self._cache.put(key, chain)
            return superseded

    # -- maintenance ----------------------------------------------------------------

    def remove_chain(self, key: EntityKey) -> None:
        """Forget the chain for ``key`` entirely (full purge of a deleted entity)."""
        self._cache.invalidate(key)

    def chains(self) -> Iterator[Tuple[EntityKey, VersionChain]]:
        """Snapshot of every cached ``(key, chain)`` pair."""
        return self._cache.items()

    def keys(self) -> List[EntityKey]:
        """Keys of every cached chain."""
        return list(self._cache.keys())

    def chain_count(self) -> int:
        """Number of cached chains."""
        return len(self._cache)

    def total_versions(self) -> int:
        """Total number of retained versions across all chains."""
        return sum(len(chain) for _key, chain in self._cache.items())

    def multi_version_chains(self) -> int:
        """Number of chains holding more than one version (history in memory)."""
        return sum(1 for _key, chain in self._cache.items() if len(chain) > 1)

    def clear(self) -> None:
        """Drop every chain (only used by tests)."""
        self._cache.clear()
