"""Engine health state: the degraded read-only mode switch.

One :class:`EngineHealth` per store manager (and therefore per database).
Healthy engines pay a single attribute read on the write path; the first
unrecoverable IO error flips the switch, after which:

* write transactions are fenced with
  :class:`~repro.errors.DatabaseReadOnlyError` at ``begin`` and at the store
  boundary,
* snapshot readers keep working from the in-memory version chains, and
* ``db.health()``, the ``repro_engine_degraded`` gauge and the exporter's
  ``/healthz`` endpoint report the degradation and its cause.

Degradation is deliberately one-way for the life of the process: the on-disk
state after a failed durability operation is only known-good again after a
fresh open replays the WAL, so the recovery story is "restart onto the same
directory", not "flip the bit back".
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.errors import DatabaseReadOnlyError

__all__ = ["EngineHealth"]


class EngineHealth:
    """Thread-safe, monotonic ok -> degraded switch with a recorded cause."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: Read lock-free on the hot path (a Python attribute read is atomic;
        #: the switch is monotonic, so a stale ``False`` only delays the
        #: fence by one racing write, which then fails at the store anyway).
        self.degraded = False
        self._reason: Optional[str] = None
        self._cause: Optional[str] = None
        self._since_monotonic: Optional[float] = None
        #: Lifecycle drain flag (also monotonic): flipped when the database
        #: (or the server in front of it) starts a graceful shutdown, so
        #: ``/healthz`` answers 503 and load balancers stop routing here
        #: while in-flight transactions finish.  Distinct from ``degraded``:
        #: a draining engine is healthy, it is just going away.
        self.draining = False
        self._drain_reason: Optional[str] = None

    @property
    def is_degraded(self) -> bool:
        """Whether the engine is in degraded read-only mode."""
        return self.degraded

    @property
    def is_draining(self) -> bool:
        """Whether a graceful shutdown drain has started."""
        return self.draining

    @property
    def status(self) -> str:
        """``"ok"``, ``"draining"`` or ``"degraded"`` (the ``/healthz`` vocabulary).

        ``degraded`` wins over ``draining``: a broken engine stays reported
        broken even while it is being shut down.
        """
        if self.degraded:
            return "degraded"
        if self.draining:
            return "draining"
        return "ok"

    def mark_degraded(self, reason: str, cause: Optional[BaseException] = None) -> bool:
        """Flip into degraded mode; returns True iff this call flipped it.

        Only the first cause is retained — later failures are consequences
        of an engine that should already have stopped writing.
        """
        with self._lock:
            if self.degraded:
                return False
            self._reason = reason
            self._cause = repr(cause) if cause is not None else None
            self._since_monotonic = time.monotonic()
            self.degraded = True
            return True

    def mark_draining(self, reason: str = "shutdown") -> bool:
        """Report a graceful shutdown in progress; returns True iff this call flipped it.

        Only affects the reported status (``/healthz`` turns 503 so traffic
        is routed away); admission control for new transactions lives in the
        database's transaction gate, not here.
        """
        with self._lock:
            if self.draining:
                return False
            self.draining = True
            self._drain_reason = reason
            return True

    def ensure_writable(self) -> None:
        """Raise :class:`DatabaseReadOnlyError` when degraded (write fence)."""
        if self.degraded:
            raise DatabaseReadOnlyError(
                "the engine is in degraded read-only mode "
                f"(reason: {self._reason}; cause: {self._cause}); "
                "snapshot reads remain available, writes are rejected"
            )

    def as_dict(self) -> Dict[str, object]:
        """JSON-able view for ``db.health()`` and the statistics surface."""
        with self._lock:
            payload: Dict[str, object] = {
                "status": self.status,
                "degraded": self.degraded,
            }
            if self.draining:
                payload["draining"] = True
                payload["drain_reason"] = self._drain_reason
            if self.degraded:
                payload["reason"] = self._reason
                payload["cause"] = self._cause
                payload["degraded_for_seconds"] = (
                    time.monotonic() - self._since_monotonic
                    if self._since_monotonic is not None
                    else None
                )
            return payload
