"""The network front end: an asyncio socket server over one database.

Architecture
------------

The engine is synchronous and thread-based, so the server splits the work:

* an **asyncio event loop** (on a dedicated background thread) owns every
  socket — accepting connections, framing, and the drain machinery — which
  is the cheap way to hold hundreds of mostly-idle connections;
* a **worker thread pool** runs the actual database work.  Each connection
  has at most one in-flight request (the protocol is strictly
  request/response), so a session's transactions are only ever touched from
  one worker at a time and need no extra locking.

Graceful drain (``shutdown()``, or SIGTERM under ``serve_forever()``):

1. the listener stops accepting and the session manager rejects new HELLOs
   with :class:`~repro.errors.ServerDrainingError` (retryable — clients can
   reconnect elsewhere);
2. the health view flips to ``draining`` so ``/healthz`` answers 503;
3. every in-flight request runs to completion and its response is written —
   an acked commit is always durable — after which each connection gets one
   final ``ServerDrainingError`` frame and is closed (open explicit
   transactions roll back: they were never acked);
4. connections that ignore the deadline are cancelled, leftover sessions are
   force-closed, and (by default) the database itself is drained and closed
   through the same transaction gate.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import os
import signal
import threading
from typing import TYPE_CHECKING, Optional, Tuple, Union

from repro.errors import ProtocolError, ReproError, ServerDrainingError
from repro.server import protocol
from repro.server.session import AuthHook, ServerSession, SessionManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.database import GraphDatabase

__all__ = ["GraphServer"]


class GraphServer:
    """A multi-client socket server over one :class:`GraphDatabase`."""

    def __init__(
        self,
        db: "GraphDatabase",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        auth: Union[AuthHook, str, None] = None,
        max_connections: int = 64,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        drain_timeout: float = 5.0,
        request_threads: Optional[int] = None,
    ) -> None:
        """``port=0`` binds an ephemeral port (read it from :attr:`address`
        after :meth:`start`).  ``auth`` is a shared-secret string or a
        ``(token, hello) -> bool`` callable; see :class:`SessionManager`."""
        self._db = db
        self._host = host
        self._port = port
        self._max_frame_bytes = max_frame_bytes
        self._drain_timeout = drain_timeout
        self.sessions = SessionManager(db, auth=auth, max_sessions=max_connections)
        workers = request_threads or min(32, (os.cpu_count() or 4) + 4)
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-server"
        )
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drain_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._address: Optional[Tuple[str, int]] = None
        self._shutdown_lock = threading.Lock()
        self._shut_down = False
        self._stop_serving = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "GraphServer":
        """Bind and start serving on a background thread; returns ``self``.

        Raises the bind error (port in use, bad host) in the calling thread.
        """
        if self._thread is not None:
            raise ReproError("the server has already been started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-server-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def shutdown(
        self,
        *,
        close_database: bool = True,
        drain_timeout: Optional[float] = None,
    ) -> None:
        """Drain and stop (idempotent); see the module docstring for the order.

        With ``close_database=False`` the database stays open for embedded
        use after the network layer is gone (and its health view is left
        alone — only a database on its way out should report ``draining``).
        """
        timeout = self._drain_timeout if drain_timeout is None else drain_timeout
        with self._shutdown_lock:
            first = not self._shut_down
            self._shut_down = True
        if first:
            self.sessions.start_draining()
            if close_database:
                self._db.store.health.mark_draining("server drain")
            if self._loop is not None and self._drain_event is not None:
                with contextlib.suppress(RuntimeError):
                    self._loop.call_soon_threadsafe(self._drain_event.set)
            if self._thread is not None:
                # The loop waits up to the drain window itself; the extra
                # second covers teardown bookkeeping.
                self._thread.join(timeout=timeout + 1.0)
            self._executor.shutdown(wait=True)
            self._stop_serving.set()
        if close_database and not self._db.is_closed:
            self._db.close()

    def serve_forever(self) -> None:
        """Block until SIGTERM/SIGINT (or :meth:`shutdown`), then drain.

        Installs signal handlers, so it must run on the main thread; this is
        what ``python -m repro.server`` sits in.
        """
        if self._thread is None:
            self.start()

        def _request_stop(signum, frame):  # noqa: ARG001 - signal signature
            self._stop_serving.set()

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _request_stop)
        try:
            self._stop_serving.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        self.shutdown()

    def __enter__(self) -> "GraphServer":
        return self.start() if self._thread is None else self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def database(self) -> "GraphDatabase":
        """The database this server fronts."""
        return self._db

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._address is None:
            raise ReproError("the server is not listening")
        return self._address

    @property
    def port(self) -> int:
        """The bound port."""
        return self.address[1]

    @property
    def is_running(self) -> bool:
        """Whether the serving thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def is_draining(self) -> bool:
        """Whether :meth:`shutdown` has begun."""
        return self.sessions.is_draining

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - defensive
            if not self._started.is_set():
                self._startup_error = exc
                self._started.set()
        finally:
            self._stop_serving.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._drain_event = asyncio.Event()
        connections: set = set()
        try:
            server = await asyncio.start_server(
                lambda r, w: self._track(connections, r, w),
                self._host,
                self._port,
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._drain_event.wait()
            server.close()
            await server.wait_closed()
            # In-flight requests get the drain window to finish and be
            # acked; each handler then sends its final draining frame.
            if connections:
                _, pending = await asyncio.wait(
                    connections, timeout=self._drain_timeout
                )
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.wait(pending, timeout=1.0)
        # Anything cancelled above skipped its own cleanup.
        self.sessions.close_all()

    async def _track(self, connections: set, reader, writer) -> None:
        task = asyncio.current_task()
        connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            connections.discard(task)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session: Optional[ServerSession] = None
        try:
            session = await self._open_session(reader, writer)
            if session is None:
                return
            await self._request_loop(session, reader, writer)
        except ProtocolError as exc:
            await self._try_send(writer, protocol.error_response(exc))
        except (ConnectionError, asyncio.CancelledError):
            # Peer vanished, or the drain deadline cancelled us; the
            # finally-block below still retires the session (open
            # transactions roll back — they were never acked).
            pass
        finally:
            if session is not None:
                await self._in_worker(session.close)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _open_session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[ServerSession]:
        hello = await protocol.read_frame_async(reader, self._max_frame_bytes)
        if hello is None:
            return None
        try:
            session = await self._in_worker(self.sessions.open_session, hello)
        except ReproError as exc:
            await self._try_send(writer, protocol.error_response(exc))
            return None
        await self._send(writer, session.hello_response())
        return session

    async def _request_loop(
        self,
        session: ServerSession,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        assert self._drain_event is not None
        while True:
            request = await self._next_request(reader)
            if request is None:
                if not self._drain_event.is_set():
                    return  # clean EOF from the peer
                await self._try_send(
                    writer, protocol.error_response(self._draining_error())
                )
                return
            response = await self._in_worker(session.handle, request)
            await self._send(writer, response)
            if request.get("op") == "goodbye":
                return

    async def _next_request(self, reader: asyncio.StreamReader) -> Optional[dict]:
        """One frame, or ``None`` on EOF *or* drain — whichever comes first."""
        assert self._drain_event is not None
        if self._drain_event.is_set():
            return None
        read = asyncio.ensure_future(
            protocol.read_frame_async(reader, self._max_frame_bytes)
        )
        drain = asyncio.ensure_future(self._drain_event.wait())
        done, _ = await asyncio.wait({read, drain}, return_when=asyncio.FIRST_COMPLETED)
        if read in done:
            drain.cancel()
            return read.result()
        read.cancel()
        with contextlib.suppress(asyncio.CancelledError, ProtocolError):
            await read
        return None

    def _draining_error(self) -> ServerDrainingError:
        return ServerDrainingError(
            "the server is draining for shutdown; no further requests will "
            "be served on this connection"
        )

    async def _in_worker(self, fn, *args):
        assert self._loop is not None
        return await self._loop.run_in_executor(self._executor, fn, *args)

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(protocol.encode_frame(payload))
        await writer.drain()

    async def _try_send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        with contextlib.suppress(Exception):
            await self._send(writer, payload)
