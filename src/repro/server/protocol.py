"""The wire protocol: length-prefixed JSON frames and the value codec.

Every message — request and response alike — is one *frame*: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.  The
format is deliberately boring: it works from any language with a socket and
a JSON parser, survives partial reads, and caps frame size so a broken (or
hostile) peer cannot make the server buffer unbounded input.

Requests are objects with an ``op`` field (``hello``, ``execute``, ``begin``,
``commit``, ``rollback``, ``ping``, ``stats``, ``goodbye``).  Responses carry
``{"ok": true, ...}`` or ``{"ok": false, "error": {...}}`` where the error
object names the :mod:`repro.errors` class (``code``), the message, and a
``retryable`` flag so clients can drive retry loops without string matching.

Result values cross the wire through :func:`encode_value` /
:func:`decode_value`: JSON scalars pass through; graph entities become
tagged objects (``{"~entity": "node", ...}``) and decode into the
:class:`RemoteNode` / :class:`RemoteRelationship` / :class:`RemotePath`
dataclasses the client library hands back.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ProtocolError, ReproError, TransactionAbortedError, classify_abort

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_PORT",
    "DEFAULT_MAX_FRAME_BYTES",
    "RemoteNode",
    "RemoteRelationship",
    "RemotePath",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "read_frame_async",
    "encode_value",
    "decode_value",
    "error_payload",
    "error_response",
]

#: Bumped on incompatible wire changes; HELLO carries it both ways.
PROTOCOL_VERSION = 1

#: Registered-ports neighbourhood of the Bolt port, but distinct from it.
DEFAULT_PORT = 7688

#: Upper bound on one frame (16 MiB) — large result sets should paginate
#: with SKIP/LIMIT rather than ship one giant frame.
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct("!I")


# ---------------------------------------------------------------------------
# remote entity handles (what tagged wire values decode into)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RemoteNode:
    """A node as returned over the wire: plain data, no live transaction."""

    id: int
    labels: Tuple[str, ...] = ()
    properties: Dict[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str) -> object:
        return self.properties[key]

    def get(self, key: str, default: object = None) -> object:
        """Property value, or ``default`` if absent."""
        return self.properties.get(key, default)


@dataclass(frozen=True)
class RemoteRelationship:
    """A relationship as returned over the wire."""

    id: int
    type: str
    start_node_id: int
    end_node_id: int
    properties: Dict[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str) -> object:
        return self.properties[key]

    def get(self, key: str, default: object = None) -> object:
        """Property value, or ``default`` if absent."""
        return self.properties.get(key, default)


@dataclass(frozen=True)
class RemotePath:
    """A path as returned over the wire."""

    nodes: Tuple[RemoteNode, ...]
    relationships: Tuple[RemoteRelationship, ...]

    @property
    def length(self) -> int:
        """Number of relationships in the path."""
        return len(self.relationships)


# ---------------------------------------------------------------------------
# frames
# ---------------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """Serialise one message to its on-wire bytes (length prefix + JSON)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _LENGTH.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """Parse a frame body; raises :class:`ProtocolError` on garbage."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must decode to an object, got {type(payload).__name__}"
        )
    return payload


def _check_length(length: int, max_frame_bytes: int) -> None:
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit"
        )


def write_frame(sock: socket.socket, payload: dict) -> None:
    """Send one message over a blocking socket."""
    sock.sendall(encode_frame(payload))


def read_frame(
    sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[dict]:
    """Read one message from a blocking socket; ``None`` on clean EOF.

    EOF in the middle of a frame is a :class:`ProtocolError` — the peer
    died mid-message.
    """
    header = _recv_exactly(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    _check_length(length, max_frame_bytes)
    body = _recv_exactly(sock, length, eof_ok=False)
    return decode_payload(body)


def _recv_exactly(
    sock: socket.socket, count: int, *, eof_ok: bool
) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


async def read_frame_async(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Optional[dict]:
    """Read one message from an asyncio stream; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from exc
    (length,) = _LENGTH.unpack(header)
    _check_length(length, max_frame_bytes)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_payload(body)


# ---------------------------------------------------------------------------
# value codec
# ---------------------------------------------------------------------------

_ENTITY_KEY = "~entity"


def encode_value(value: object) -> object:
    """Map one result value onto JSON-able wire form.

    Scalars pass through; graph entity handles (live server-side ones and
    the remote dataclasses alike) become tagged objects; containers encode
    recursively.  Maps with a literal ``~entity`` key are rejected rather
    than silently corrupted.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(encode_value(item) for item in value)
    if isinstance(value, dict):
        if _ENTITY_KEY in value:
            raise ProtocolError(f"maps may not carry the reserved key {_ENTITY_KEY!r}")
        return {str(key): encode_value(item) for key, item in value.items()}
    # Live API handles and remote dataclasses share attribute shapes, so one
    # duck-typed branch covers both directions of the codec.
    node = _encode_node(value)
    if node is not None:
        return node
    relationship = _encode_relationship(value)
    if relationship is not None:
        return relationship
    nodes = getattr(value, "nodes", None)
    relationships = getattr(value, "relationships", None)
    if nodes is not None and relationships is not None and not callable(relationships):
        return {
            _ENTITY_KEY: "path",
            "nodes": [encode_value(item) for item in nodes],
            "relationships": [encode_value(item) for item in relationships],
        }
    raise ProtocolError(
        f"value of type {type(value).__name__} cannot cross the wire"
    )


def _encode_node(value: object) -> Optional[dict]:
    labels = getattr(value, "labels", None)
    if labels is None or not hasattr(value, "properties") or hasattr(value, "type"):
        return None
    return {
        _ENTITY_KEY: "node",
        "id": value.id,
        "labels": sorted(labels),
        "properties": {
            key: encode_value(item) for key, item in value.properties.items()
        },
    }


def _encode_relationship(value: object) -> Optional[dict]:
    rel_type = getattr(value, "type", None)
    if rel_type is None or not hasattr(value, "start_node_id"):
        return None
    return {
        _ENTITY_KEY: "relationship",
        "id": value.id,
        "type": rel_type,
        "start": value.start_node_id,
        "end": value.end_node_id,
        "properties": {
            key: encode_value(item) for key, item in value.properties.items()
        },
    }


def decode_value(value: object) -> object:
    """Inverse of :func:`encode_value` (entities become remote dataclasses)."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        kind = value.get(_ENTITY_KEY)
        if kind is None:
            return {key: decode_value(item) for key, item in value.items()}
        if kind == "node":
            return RemoteNode(
                id=value["id"],
                labels=tuple(value.get("labels", ())),
                properties={
                    key: decode_value(item)
                    for key, item in value.get("properties", {}).items()
                },
            )
        if kind == "relationship":
            return RemoteRelationship(
                id=value["id"],
                type=value["type"],
                start_node_id=value["start"],
                end_node_id=value["end"],
                properties={
                    key: decode_value(item)
                    for key, item in value.get("properties", {}).items()
                },
            )
        if kind == "path":
            return RemotePath(
                nodes=tuple(decode_value(item) for item in value.get("nodes", ())),
                relationships=tuple(
                    decode_value(item) for item in value.get("relationships", ())
                ),
            )
        raise ProtocolError(f"unknown entity tag {kind!r}")
    return value


# ---------------------------------------------------------------------------
# error mapping
# ---------------------------------------------------------------------------


def error_payload(exc: BaseException) -> dict:
    """The wire form of an exception (the response's ``error`` object)."""
    payload: Dict[str, object] = {
        "code": type(exc).__name__,
        "message": str(exc) or type(exc).__name__,
        "retryable": bool(getattr(exc, "retryable", False)),
    }
    if isinstance(exc, TransactionAbortedError):
        payload["reason"] = classify_abort(exc)
    if not isinstance(exc, ReproError):
        # Unexpected server-side failure: clients map unknown codes onto
        # ServerError, so keep the real class name for the log line only.
        payload["code"] = "ServerError"
        payload["message"] = f"{type(exc).__name__}: {exc}"
    return payload


def error_response(exc: BaseException) -> dict:
    """A full ``{"ok": false}`` response for ``exc``."""
    return {"ok": False, "error": error_payload(exc)}
