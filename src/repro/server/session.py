"""Server-side sessions: connection state, negotiation, request dispatch.

Each accepted connection gets one :class:`ServerSession` wrapping an
API-level :class:`~repro.api.session.Session`.  The HELLO exchange
negotiates the session's parameters:

* **isolation** — the database runs one concurrency-control policy, chosen
  at open time, so negotiation is grant-based: a request for the database's
  level (or a *weaker* one) is served at the database's level — strictly
  stronger isolation is always a correct answer to a weaker request — and
  the granted level is reported back.  A request for a *stronger* level than
  the database provides is granted-down the same way unless the client sets
  ``require_isolation``, in which case HELLO fails with
  :class:`~repro.errors.IsolationNegotiationError`.
* **read_only** — a read-only session begins every transaction read-only
  (the free path under serializable isolation) and rejects write statements.
* **deferrable** — forwarded to the safe-snapshot machinery for read-only
  serializable transactions.

Request handling is synchronous by design: the engine is thread-based, so
the asyncio front end runs :meth:`ServerSession.handle` on a worker thread,
one in-flight request per connection (the protocol is strictly
request/response, which is what makes session-scoped transactions safe).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from repro.api.runtime import coerce_isolation
from repro.engine import IsolationLevel
from repro.errors import (
    AuthenticationError,
    ConnectionLimitError,
    IsolationNegotiationError,
    ProtocolError,
    ServerDrainingError,
)
from repro.server import protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.database import GraphDatabase
    from repro.api.session import Session

__all__ = ["ServerSession", "SessionManager", "negotiate_isolation"]

#: Strength order used by the negotiation grant rule.
_STRENGTH = {
    IsolationLevel.READ_COMMITTED: 0,
    IsolationLevel.SNAPSHOT: 1,
    IsolationLevel.SERIALIZABLE: 2,
}

#: HELLO ``auth`` hook: token and client-info dict in, verdict out.
AuthHook = Callable[[Optional[str], dict], bool]


def negotiate_isolation(
    db_level: IsolationLevel,
    requested: Union[IsolationLevel, str, None],
    *,
    require: bool = False,
) -> IsolationLevel:
    """Grant an isolation level for a session (see the module docstring)."""
    if requested is None:
        return db_level
    req = coerce_isolation(requested)
    if _STRENGTH[req] > _STRENGTH[db_level] and require:
        raise IsolationNegotiationError(
            f"session requires {req.value} but the database provides "
            f"{db_level.value}; reopen the database at the stronger level "
            "or drop require_isolation"
        )
    return db_level


class ServerSession:
    """One connection's session: negotiated parameters plus dispatch."""

    def __init__(
        self,
        manager: "SessionManager",
        session: "Session",
        *,
        requested_isolation: Optional[str],
        client: str,
    ) -> None:
        self._manager = manager
        self._session = session
        self.session_id = session.session_id
        self.requested_isolation = requested_isolation
        self.isolation = manager.db.isolation_level
        self.client = client
        self._closed = False

    # -- views ---------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """Whether the session holds an open explicit transaction."""
        return self._session.in_transaction

    def hello_response(self) -> dict:
        """The successful HELLO payload (negotiation outcome included)."""
        return {
            "ok": True,
            "server": "repro",
            "protocol": protocol.PROTOCOL_VERSION,
            "session_id": self.session_id,
            "isolation": self.isolation.value,
            "requested_isolation": self.requested_isolation,
            "read_only": self._session.read_only,
        }

    # -- dispatch ------------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Serve one request; never raises (errors become error responses)."""
        op = request.get("op")
        self._manager.record_request(op)
        try:
            handler = self._HANDLERS.get(op)
            if handler is None:
                raise ProtocolError(f"unknown op {op!r}")
            return handler(self, request)
        except BaseException as exc:  # noqa: BLE001 - must answer the client
            self._manager.record_error(exc)
            return protocol.error_response(exc)

    def _handle_execute(self, request: dict) -> dict:
        query = request.get("query")
        if not isinstance(query, str):
            raise ProtocolError("execute requires a string 'query'")
        parameters = request.get("params") or {}
        if not isinstance(parameters, dict):
            raise ProtocolError("'params' must be an object")
        parameters = {
            key: protocol.decode_value(value) for key, value in parameters.items()
        }
        in_transaction = self._session.in_transaction
        result = self._session.execute(query, parameters)
        rows = [
            [protocol.encode_value(value) for value in record.values()]
            for record in result.records()
        ]
        response: Dict[str, object] = {
            "ok": True,
            "columns": result.columns,
            "rows": rows,
            "stats": result.stats.as_dict(),
            "in_transaction": in_transaction,
        }
        if not in_transaction and result.stats.contains_updates:
            response["commit_ts"] = self._session.last_commit_ts
        if result.plan is not None:
            response["plan"] = result.render_plan()
        return response

    def _handle_begin(self, request: dict) -> dict:
        tx = self._session.begin(
            read_only=request.get("read_only"),
            deferrable=request.get("deferrable"),
        )
        return {"ok": True, "txn_id": tx.id}

    def _handle_commit(self, request: dict) -> dict:
        commit_ts = self._session.commit()
        return {"ok": True, "commit_ts": commit_ts}

    def _handle_rollback(self, request: dict) -> dict:
        self._session.rollback()
        return {"ok": True}

    def _handle_ping(self, request: dict) -> dict:
        return {"ok": True, "health": self._manager.db.health()}

    def _handle_stats(self, request: dict) -> dict:
        return {"ok": True, "server": self._manager.stats()}

    def _handle_goodbye(self, request: dict) -> dict:
        # The connection loop closes the session after sending the response.
        return {"ok": True}

    _HANDLERS = {
        "execute": _handle_execute,
        "begin": _handle_begin,
        "commit": _handle_commit,
        "rollback": _handle_rollback,
        "ping": _handle_ping,
        "stats": _handle_stats,
        "goodbye": _handle_goodbye,
    }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Roll back any open transaction and deregister (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._session.close()
        finally:
            self._manager.forget(self)


class SessionManager:
    """Owns every live server session; enforces auth and admission limits."""

    def __init__(
        self,
        db: "GraphDatabase",
        *,
        auth: Union[AuthHook, str, None] = None,
        max_sessions: int = 64,
    ) -> None:
        """``auth`` may be a shared-secret string (compared against the
        HELLO token) or a callable ``(token, hello) -> bool``; ``None``
        disables authentication."""
        self.db = db
        self._auth = auth
        self._max_sessions = max_sessions
        self._lock = threading.Lock()
        self._sessions: Dict[int, ServerSession] = {}
        self._draining = False
        # Service-level instruments on the database's registry, as promised
        # by the observability docs: session gauge + request/error counters.
        registry = db.observability.registry
        registry.gauge(
            "repro_server_sessions",
            "Live server sessions (connections past HELLO)",
        ).set_function(self.active_count)
        self._requests = registry.counter(
            "repro_server_requests_total",
            "Requests served by the network layer, by op",
            labelnames=("op",),
        )
        self._errors = registry.counter(
            "repro_server_errors_total",
            "Error responses sent by the network layer, by error code",
            labelnames=("code",),
        )
        self._opened = registry.counter(
            "repro_server_sessions_opened_total",
            "Sessions opened since the server started",
        )
        self._rejected = registry.counter(
            "repro_server_rejections_total",
            "Connections rejected before a session opened, by cause",
            labelnames=("cause",),
        )

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def open_session(self, hello: dict) -> ServerSession:
        """Admit one HELLO: auth, limits, negotiation; returns the session."""
        if hello.get("op") != "hello":
            self._rejected.labels(cause="protocol").inc()
            raise ProtocolError("the first message must be 'hello'")
        client = str(hello.get("client", ""))
        self._authenticate(hello)
        requested = hello.get("isolation")
        negotiate_isolation(
            self.db.isolation_level,
            requested,
            require=bool(hello.get("require_isolation")),
        )
        session = self.db.session(
            read_only=bool(hello.get("read_only")),
            deferrable=hello.get("deferrable"),
        )
        server_session = ServerSession(
            self,
            session,
            requested_isolation=requested,
            client=client,
        )
        with self._lock:
            if self._draining:
                session.close()
                self._rejected.labels(cause="draining").inc()
                raise ServerDrainingError(
                    "the server is draining for shutdown; connect elsewhere"
                )
            if len(self._sessions) >= self._max_sessions:
                session.close()
                self._rejected.labels(cause="connection-limit").inc()
                raise ConnectionLimitError(
                    f"the server is at its limit of {self._max_sessions} sessions"
                )
            self._sessions[server_session.session_id] = server_session
        self._opened.inc()
        return server_session

    def _authenticate(self, hello: dict) -> None:
        if self._auth is None:
            return
        token = hello.get("auth_token")
        if isinstance(self._auth, str):
            granted = isinstance(token, str) and token == self._auth
        else:
            granted = bool(self._auth(token, hello))
        if not granted:
            self._rejected.labels(cause="auth").inc()
            raise AuthenticationError("the server rejected the session credentials")

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def forget(self, server_session: ServerSession) -> None:
        """Drop a closed session from the live set."""
        with self._lock:
            self._sessions.pop(server_session.session_id, None)

    def active_count(self) -> int:
        """Number of live sessions."""
        with self._lock:
            return len(self._sessions)

    def record_request(self, op: object) -> None:
        """Count one request (unknown ops land in the 'invalid' bucket)."""
        label = op if isinstance(op, str) and op.isidentifier() else "invalid"
        self._requests.labels(op=label).inc()

    def record_error(self, exc: BaseException) -> None:
        """Count one error response by wire code."""
        self._errors.labels(code=protocol.error_payload(exc)["code"]).inc()

    def stats(self) -> dict:
        """The 'stats' op payload (also useful for tests and the demo)."""
        with self._lock:
            sessions: List[dict] = [
                {
                    "session_id": s.session_id,
                    "client": s.client,
                    "isolation": s.isolation.value,
                    "in_transaction": s.in_transaction,
                }
                for s in self._sessions.values()
            ]
        return {
            "sessions": sessions,
            "session_count": len(sessions),
            "draining": self._draining,
            "isolation": self.db.isolation_level.value,
            "health": self.db.health(),
        }

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------

    def start_draining(self) -> None:
        """Refuse new sessions from now on (existing ones finish up)."""
        with self._lock:
            self._draining = True

    @property
    def is_draining(self) -> bool:
        """Whether :meth:`start_draining` has run."""
        return self._draining

    def close_all(self) -> None:
        """Close every live session (open transactions roll back)."""
        with self._lock:
            sessions = list(self._sessions.values())
        for server_session in sessions:
            server_session.close()
