"""The network service layer: serve one database to many clients.

* :mod:`repro.server.protocol` — the wire format: length-prefixed JSON
  frames, the value codec for graph entities, and the error mapping.
* :mod:`repro.server.session` — server-side sessions: HELLO negotiation
  (auth, isolation, read-only), admission limits, request dispatch.
* :mod:`repro.server.server` — :class:`GraphServer`: the asyncio front end
  with a worker pool for engine calls and a graceful drain that never drops
  an acked commit.

Serve a database embedded::

    from repro import GraphDatabase
    from repro.server import GraphServer

    db = GraphDatabase("/data/graph")
    with GraphServer(db, port=7688) as server:
        print("listening on", server.address)
        server.serve_forever()

or from the command line: ``python -m repro.server --path /data/graph``.
The matching synchronous client lives in :mod:`repro.client`.
"""

from repro.server.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    RemoteNode,
    RemotePath,
    RemoteRelationship,
)
from repro.server.server import GraphServer
from repro.server.session import ServerSession, SessionManager, negotiate_isolation

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "GraphServer",
    "RemoteNode",
    "RemotePath",
    "RemoteRelationship",
    "ServerSession",
    "SessionManager",
    "negotiate_isolation",
]
