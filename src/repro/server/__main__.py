"""``python -m repro.server`` — run a database as a network service.

Prints one ``listening <host>:<port>`` line to stdout once the socket is
bound (scripts wait for it), serves until SIGTERM/SIGINT, drains
gracefully, and exits 0 — which is what the smoke script and the container
entry point assert.
"""

from __future__ import annotations

import argparse
import sys

from repro.api.database import GraphDatabase
from repro.server.protocol import DEFAULT_PORT
from repro.server.server import GraphServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a repro graph database over the wire protocol.",
    )
    parser.add_argument(
        "--path",
        default=None,
        help="database directory (omit for a fresh in-memory database)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--isolation",
        default="snapshot",
        choices=["read_committed", "snapshot", "serializable"],
        help="isolation level the database (and so every session) runs at",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        help="shared secret clients must present in HELLO (default: no auth)",
    )
    parser.add_argument(
        "--max-connections", type=int, default=64, help="session admission limit"
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="seconds in-flight work gets to finish on shutdown",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="also serve /metrics + /healthz on this port (0 = ephemeral)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    db = GraphDatabase(args.path, isolation=args.isolation)
    exporter = None
    if args.metrics_port is not None:
        exporter = db.serve_metrics(host=args.host, port=args.metrics_port)
    server = GraphServer(
        db,
        args.host,
        args.port,
        auth=args.auth_token,
        max_connections=args.max_connections,
        drain_timeout=args.drain_timeout,
    )
    try:
        server.start()
    except OSError as exc:
        print(f"bind failed: {exc}", file=sys.stderr)
        db.close()
        return 1
    host, port = server.address
    print(f"listening {host}:{port}", flush=True)
    if exporter is not None:
        print(f"metrics {exporter.url}", flush=True)
    server.serve_forever()  # returns after a signal, fully drained
    return 0


if __name__ == "__main__":
    sys.exit(main())
