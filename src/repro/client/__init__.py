"""The synchronous client for the network service layer.

:class:`GraphClient` speaks the :mod:`repro.server.protocol` wire format:
connect + HELLO negotiation, auto-commit ``execute()``, explicit
``begin()``/``commit()``/``rollback()``, and errors mapped back onto
:mod:`repro.errors` so embedded code ports unchanged.  Graph entities in
results come back as the ``RemoteNode`` / ``RemoteRelationship`` /
``RemotePath`` dataclasses re-exported here.
"""

from repro.client.client import ClientResult, GraphClient, remote_error
from repro.server.protocol import RemoteNode, RemotePath, RemoteRelationship

__all__ = [
    "ClientResult",
    "GraphClient",
    "RemoteNode",
    "RemotePath",
    "RemoteRelationship",
    "remote_error",
]
