"""The synchronous client for :mod:`repro.server`.

One :class:`GraphClient` is one connection and therefore one server-side
session: at most one open explicit transaction, session defaults negotiated
in HELLO, and a read-your-writes token (:attr:`GraphClient.last_commit_ts`)
updated on every acked write.

Server errors come back as the matching :mod:`repro.errors` class whenever
the wire ``code`` names one, so embedded retry loops port unchanged::

    from repro.client import GraphClient
    from repro.errors import TransactionAbortedError

    with GraphClient(port=7688) as client:
        while True:
            try:
                client.execute(
                    "MATCH (n:Counter) SET n.value = n.value + 1"
                )
                break
            except TransactionAbortedError as exc:
                if not exc.retryable:
                    raise

Remote errors carry ``remote=True``, the wire code in ``remote_code``, the
server's ``retryable`` verdict, and for aborts the ``classify_abort``
taxonomy bucket in ``remote_reason``.

The client is deliberately not thread-safe beyond a serialising lock: the
protocol is strictly request/response per connection, so threads sharing a
client would serialise anyway — open one client per thread instead.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import repro.errors
from repro.errors import ProtocolError, ReproError, ServerError
from repro.server import protocol

__all__ = ["ClientResult", "GraphClient", "remote_error"]


def remote_error(error: dict) -> ReproError:
    """Materialise a wire error object as the matching local exception.

    The wire ``code`` is a :mod:`repro.errors` class name; unknown codes
    (or codes that name something other than a ReproError) become a plain
    :class:`ServerError` so a server can add error types without breaking
    old clients.  Construction bypasses ``__init__`` — several error
    classes build their message from structured arguments the wire does not
    carry, and the server's message must survive verbatim.
    """
    code = str(error.get("code", "ServerError"))
    message = str(error.get("message", code))
    cls = getattr(repro.errors, code, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ServerError
        message = f"{code}: {message}" if code != "ServerError" else message
    exc = cls.__new__(cls)
    Exception.__init__(exc, message)
    exc.remote = True
    exc.remote_code = code
    exc.retryable = bool(error.get("retryable", False))
    exc.remote_reason = error.get("reason")
    return exc


@dataclass
class ClientResult:
    """A fully-materialised query result from the server."""

    columns: Tuple[str, ...]
    rows: List[List[object]]
    stats: Dict[str, object]
    #: Commit timestamp when the statement auto-committed a write;
    #: ``None`` inside explicit transactions and for pure reads.
    commit_ts: Optional[int] = None
    #: Rendered plan for EXPLAIN/PROFILE statements.
    plan: Optional[str] = None

    def records(self) -> List[Dict[str, object]]:
        """Rows as column-keyed dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def values(self, column: int = 0) -> List[object]:
        """One column of the result."""
        return [row[column] for row in self.rows]

    def single(self) -> List[object]:
        """The only row; errors unless exactly one came back."""
        if len(self.rows) != 1:
            raise ReproError(f"expected exactly one row, got {len(self.rows)}")
        return self.rows[0]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class GraphClient:
    """A connection to a :class:`~repro.server.GraphServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        *,
        isolation: Union[str, None] = None,
        require_isolation: bool = False,
        read_only: bool = False,
        deferrable: Optional[bool] = None,
        auth_token: Optional[str] = None,
        client_name: str = "repro-client",
        timeout: Optional[float] = None,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        """Connect and negotiate the session; raises the mapped server error
        if HELLO is rejected (auth, connection limit, isolation, drain)."""
        self._max_frame_bytes = max_frame_bytes
        self._lock = threading.Lock()
        self._closed = False
        self._in_transaction = False
        #: Commit timestamp of this session's newest acked write (the
        #: read-your-writes token; carry it to a replica as a watermark).
        self.last_commit_ts: Optional[int] = None
        self._sock = socket.create_connection((host, port), timeout=timeout)
        try:
            hello: Dict[str, object] = {
                "op": "hello",
                "protocol": protocol.PROTOCOL_VERSION,
                "client": client_name,
                "read_only": bool(read_only),
            }
            if isolation is not None:
                value = getattr(isolation, "value", isolation)
                hello["isolation"] = value
                hello["require_isolation"] = bool(require_isolation)
            if deferrable is not None:
                hello["deferrable"] = bool(deferrable)
            if auth_token is not None:
                hello["auth_token"] = auth_token
            response = self._roundtrip(hello)
        except BaseException:
            self._sock.close()
            self._closed = True
            raise
        #: Session id and the isolation level the server granted.
        self.session_id: int = int(response["session_id"])
        self.isolation: str = str(response["isolation"])
        self.read_only: bool = bool(response["read_only"])

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def execute(
        self,
        query: str,
        parameters: Optional[Dict[str, object]] = None,
        **params: object,
    ) -> ClientResult:
        """Run a statement (auto-commit outside an explicit transaction)."""
        merged = dict(parameters or {})
        merged.update(params)
        request: Dict[str, object] = {"op": "execute", "query": query}
        if merged:
            request["params"] = {
                key: protocol.encode_value(value) for key, value in merged.items()
            }
        response = self._roundtrip(request)
        commit_ts = response.get("commit_ts")
        if commit_ts is not None:
            self.last_commit_ts = commit_ts
        return ClientResult(
            columns=tuple(response.get("columns", ())),
            rows=[
                [protocol.decode_value(value) for value in row]
                for row in response.get("rows", ())
            ],
            stats=response.get("stats", {}),
            commit_ts=commit_ts,
            plan=response.get("plan"),
        )

    # ------------------------------------------------------------------
    # explicit transactions
    # ------------------------------------------------------------------

    def begin(
        self,
        *,
        read_only: Optional[bool] = None,
        deferrable: Optional[bool] = None,
    ) -> int:
        """Open the session's explicit transaction; returns its id."""
        request: Dict[str, object] = {"op": "begin"}
        if read_only is not None:
            request["read_only"] = bool(read_only)
        if deferrable is not None:
            request["deferrable"] = bool(deferrable)
        response = self._roundtrip(request)
        self._in_transaction = True
        return int(response["txn_id"])

    def commit(self) -> Optional[int]:
        """Commit the explicit transaction; returns the commit timestamp."""
        response = self._roundtrip({"op": "commit"})
        self._in_transaction = False
        commit_ts = response.get("commit_ts")
        if commit_ts is not None:
            self.last_commit_ts = commit_ts
        return commit_ts

    def rollback(self) -> None:
        """Roll the explicit transaction back."""
        self._roundtrip({"op": "rollback"})
        self._in_transaction = False

    @property
    def in_transaction(self) -> bool:
        """Whether this client believes an explicit transaction is open."""
        return self._in_transaction

    # ------------------------------------------------------------------
    # service
    # ------------------------------------------------------------------

    def ping(self) -> Dict[str, object]:
        """The server's health view (``status`` ok/draining/degraded)."""
        return self._roundtrip({"op": "ping"})["health"]

    def server_stats(self) -> Dict[str, object]:
        """The server's session/drain statistics."""
        return self._roundtrip({"op": "stats"})["server"]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def is_closed(self) -> bool:
        """Whether :meth:`close` has run (or the connection died)."""
        return self._closed

    def close(self) -> None:
        """Say goodbye (best effort) and close the socket (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                protocol.write_frame(self._sock, {"op": "goodbye"})
                protocol.read_frame(self._sock, self._max_frame_bytes)
            except OSError:
                pass
            finally:
                self._sock.close()

    def __enter__(self) -> "GraphClient":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # wire
    # ------------------------------------------------------------------

    def _roundtrip(self, request: dict) -> dict:
        with self._lock:
            if self._closed:
                raise ServerError("the client is closed")
            try:
                protocol.write_frame(self._sock, request)
                response = protocol.read_frame(self._sock, self._max_frame_bytes)
            except (OSError, ProtocolError):
                # The connection is unusable mid-exchange; fail every later
                # call fast instead of writing into a broken pipe.
                self._closed = True
                self._sock.close()
                raise
        if response is None:
            self._closed = True
            self._sock.close()
            raise ServerError("the server closed the connection")
        if not response.get("ok"):
            raise remote_error(response.get("error", {}))
        return response
